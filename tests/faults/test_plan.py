"""Unit coverage for selectors, specs, plans, and the JSON format."""

import json

import pytest

from repro.core import Simulation, units
from repro.core.entity import Entity
from repro.faults import (
    CustodianLapse,
    DegradeFault,
    FaultPlan,
    FaultPlanError,
    FlapFault,
    HotspotChurnBurst,
    KillFault,
    MaintenanceNoShow,
    Selector,
    WalletDrain,
    load_plan,
    pinned_chaos_plan,
)
from repro.reliability.distributions import Exponential
from repro.reliability.failure import RenewalProcess


class Widget(Entity):
    TIER = "gateway"


class Pipe(Entity):
    TIER = "backhaul"


def _population(sim, n=5):
    widgets = []
    for index in range(n):
        widget = Widget(sim, name=f"w{index}")
        widget.tags["technology"] = "lora" if index % 2 else "802.15.4"
        widget.deploy()
        widgets.append(widget)
    return widgets


class TestSelector:
    def test_by_name_hits_only_named_live_entities(self):
        sim = Simulation(seed=0)
        widgets = _population(sim)
        widgets[1].fail()
        chosen = Selector.by_name("w0", "w1", "w3").resolve(sim)
        assert [w.name for w in chosen] == ["w0", "w3"]

    def test_by_tier_with_where_filter(self):
        sim = Simulation(seed=0)
        _population(sim)
        lora = Selector.by_tier("gateway", where=(("technology", "lora"),))
        assert [w.name for w in lora.resolve(sim)] == ["w1", "w3"]

    def test_k_random_is_deterministic_per_stream(self):
        sim_a = Simulation(seed=11)
        _population(sim_a, n=8)
        sim_b = Simulation(seed=11)
        _population(sim_b, n=8)
        select = Selector.k_random(3, tier="gateway")
        picks_a = [w.name for w in select.resolve(sim_a, sim_a.rng("faults:x"))]
        picks_b = [w.name for w in select.resolve(sim_b, sim_b.rng("faults:x"))]
        assert len(picks_a) == 3
        assert picks_a == picks_b

    def test_k_random_clamps_to_population(self):
        sim = Simulation(seed=3)
        _population(sim, n=2)
        select = Selector.k_random(10, tier="gateway")
        assert len(select.resolve(sim, sim.rng("faults:y"))) == 2

    def test_blast_radius_prefers_most_depended_on(self):
        sim = Simulation(seed=0)
        shared, spare = Pipe(sim, name="shared"), Pipe(sim, name="spare")
        widgets = _population(sim, n=4)
        for widget in widgets[:3]:
            widget.add_dependency(shared)
        widgets[3].add_dependency(spare)
        shared.deploy(), spare.deploy()
        top = Selector.blast_radius(1, tier="backhaul").resolve(sim)
        assert [e.name for e in top] == ["shared"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Selector(by="psychic")
        with pytest.raises(ValueError):
            Selector.by_name()
        with pytest.raises(ValueError):
            Selector.k_random(0, tier="gateway")


class TestSpecValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            KillFault(at=-1.0, select=Selector.by_tier("gateway"))
        with pytest.raises(ValueError):
            KillFault(at=0.0, select=Selector.by_tier("gateway"), mode="maim")
        with pytest.raises(ValueError):
            DegradeFault(at=0.0, select=Selector.by_tier("cloud"), duration=0.0)
        with pytest.raises(ValueError):
            FlapFault(at=0.0, select=Selector.by_tier("backhaul"), down=1.0,
                      up=0.0)
        with pytest.raises(ValueError):
            HotspotChurnBurst(at=0.0, k=0)
        with pytest.raises(ValueError):
            WalletDrain(at=0.0)  # neither credits nor fraction
        with pytest.raises(ValueError):
            WalletDrain(at=0.0, credits=5, fraction=0.5)  # both
        with pytest.raises(ValueError):
            WalletDrain(at=0.0, fraction=1.5)
        with pytest.raises(ValueError):
            MaintenanceNoShow(at=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            CustodianLapse(at=0.0, duration=0.0)

    def test_keys_are_content_derived(self):
        spec = DegradeFault(
            at=units.days(3.0),
            select=Selector.by_name("campus-net"),
            duration=units.days(1.0),
        )
        same = DegradeFault(
            at=units.days(3.0),
            select=Selector.by_name("campus-net"),
            duration=units.days(1.0),
        )
        other = DegradeFault(
            at=units.days(4.0),
            select=Selector.by_name("campus-net"),
            duration=units.days(1.0),
        )
        assert spec.key() == same.key()
        assert spec.key() != other.key()

    def test_delivery_gating_classification(self):
        gating = [
            DegradeFault(at=1.0, select=Selector.by_tier("backhaul"),
                         duration=2.0),
            FlapFault(at=1.0, select=Selector.by_tier("cloud"), down=1.0,
                      up=1.0),
            WalletDrain(at=1.0, fraction=0.5),
            CustodianLapse(at=1.0, duration=2.0),
        ]
        shifting = [
            KillFault(at=1.0, select=Selector.by_tier("gateway")),
            DegradeFault(at=1.0, select=Selector.by_tier("gateway"),
                         duration=2.0),
            HotspotChurnBurst(at=1.0, k=2),
            MaintenanceNoShow(at=1.0, duration=2.0),
        ]
        assert all(s.delivery_gating for s in gating)
        assert not any(s.delivery_gating for s in shifting)
        assert FaultPlan(specs=tuple(gating)).delivery_gating
        assert not FaultPlan(specs=tuple(gating + shifting)).delivery_gating


class TestPlanInstall:
    def test_duplicate_spec_rejected_in_plan_and_across_installs(self):
        spec = WalletDrain(at=1.0, fraction=0.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(specs=(spec, spec))
        sim = Simulation(seed=0)
        sim.install_faults(FaultPlan(name="one", specs=(spec,)))
        with pytest.raises(FaultPlanError):
            sim.install_faults(FaultPlan(name="two", specs=(spec,)))

    def test_repeated_install_extends_one_controller(self):
        sim = Simulation(seed=0)
        first = sim.install_faults(
            FaultPlan(name="a", specs=(WalletDrain(at=1.0, fraction=0.1),))
        )
        second = sim.install_faults(
            FaultPlan(name="b", specs=(WalletDrain(at=2.0, fraction=0.1),))
        )
        assert first is second is sim.fault_controller
        assert first.plan_names == ["a", "b"]
        assert len(first.specs) == 2

    def test_missing_wallet_resource_is_noop(self):
        sim = Simulation(seed=0)
        controller = sim.install_faults(
            FaultPlan(specs=(WalletDrain(at=1.0, fraction=0.9),))
        )
        sim.run_until(2.0)
        assert controller.fired == 1
        assert controller.events[0][2] == "wallet-drain-skipped"

    def test_degrade_windows_overlap_compose(self):
        sim = Simulation(seed=0)
        widget = Widget(sim, name="w0")
        widget.deploy()
        sim.install_faults(
            FaultPlan(
                specs=(
                    DegradeFault(at=10.0, select=Selector.by_name("w0"),
                                 duration=30.0),
                    DegradeFault(at=20.0, select=Selector.by_name("w0"),
                                 duration=30.0),
                )
            )
        )
        sim.run_until(25.0)
        assert widget.forced_degradations == 2
        sim.run_until(45.0)  # first window closed, second still open
        assert widget.forced_degradations == 1 and widget.degraded
        sim.run_until(60.0)
        assert widget.forced_degradations == 0 and not widget.degraded


class TestMaintenanceNoShow:
    def test_renewal_replacement_defers_to_window_end(self):
        sim = Simulation(seed=5)
        first = Widget(sim, name="unit-0")
        made = []

        def factory():
            successor = Widget(sim, name=f"unit-{len(made) + 1}")
            made.append(successor)
            return successor

        renewal = RenewalProcess(
            sim,
            first,
            Exponential(scale=units.days(30.0)),
            factory,
            logistics_delay=units.days(1.0),
            stream="renewals",
        )
        first.deploy()
        renewal.start()
        failure_at = renewal._process.scheduled_at
        visit_at = failure_at + units.days(1.0)
        window_end = visit_at + units.days(40.0)
        sim.install_faults(
            FaultPlan(
                specs=(
                    MaintenanceNoShow(
                        at=visit_at - units.days(0.5),
                        duration=units.days(40.5),
                    ),
                )
            )
        )
        sim.run_until(visit_at + units.days(1.0))
        assert not made  # the visit found nobody home
        sim.run_until(window_end + units.days(0.5))
        assert len(made) == 1  # and happened right when the window closed
        assert renewal.history[0].replaced_at == pytest.approx(window_end)

    def test_suppression_window_queries(self):
        sim = Simulation(seed=0)
        controller = sim.install_faults(
            FaultPlan(specs=(MaintenanceNoShow(at=100.0, duration=50.0),))
        )
        assert not controller.maintenance_suppressed(99.0)
        assert controller.maintenance_suppressed(100.0)
        assert controller.maintenance_suppressed(149.0)
        assert not controller.maintenance_suppressed(150.0)  # half-open
        assert controller.suppression_ends(120.0) == 150.0
        assert controller.suppression_ends(99.0) == 99.0


class TestJson:
    def test_pinned_plan_round_trips_exactly(self):
        plan = pinned_chaos_plan()
        assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan

    def test_unit_suffixes_accepted(self):
        payload = {
            "version": 1,
            "name": "suffixes",
            "faults": [
                {"kind": "wallet-drain", "at_days": 2, "fraction": 0.5},
                {"kind": "custodian-lapse", "at_years": 1, "duration_hours": 6},
            ],
        }
        plan = FaultPlan.from_dict(payload)
        assert plan.specs[0].at == units.days(2.0)
        assert plan.specs[1].at == units.years(1.0)
        assert plan.specs[1].duration == units.hours(6.0)

    def test_malformed_plans_raise_with_context(self):
        with pytest.raises(FaultPlanError, match="version"):
            FaultPlan.from_dict({"version": 99, "faults": []})
        with pytest.raises(FaultPlanError, match="faults"):
            FaultPlan.from_dict({"version": 1})
        with pytest.raises(FaultPlanError, match="unknown kind"):
            FaultPlan.from_dict(
                {"version": 1, "faults": [{"kind": "gremlin", "at_s": 1}]}
            )
        with pytest.raises(FaultPlanError, match="#0"):
            FaultPlan.from_dict(
                {"version": 1, "faults": [{"kind": "wallet-drain"}]}
            )
        # A time field needs exactly one unit suffix — zero or two fail.
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultPlan.from_dict(
                {
                    "version": 1,
                    "faults": [
                        {"kind": "wallet-drain", "at": 5, "fraction": 0.1}
                    ],
                }
            )
        with pytest.raises(FaultPlanError, match="exactly one"):
            FaultPlan.from_dict(
                {
                    "version": 1,
                    "faults": [
                        {
                            "kind": "wallet-drain",
                            "at_s": 5,
                            "at_days": 5,
                            "fraction": 0.1,
                        }
                    ],
                }
            )

    def test_load_plan_from_disk(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(pinned_chaos_plan().to_json())
        assert load_plan(str(path)) == pinned_chaos_plan()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="invalid JSON"):
            load_plan(str(bad))
