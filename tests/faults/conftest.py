"""Hypothesis profile for the chaos/property suites.

The ``chaos`` profile is what CI's dedicated chaos job runs under
(``HYPOTHESIS_PROFILE=chaos``): derandomized so failures reproduce from
the log alone, no deadline (simulation examples are tens of
milliseconds, but pool startup in the worker-count property is not),
and a modest example budget.  Locally, nothing is loaded unless the
environment asks — each property carries its own explicit ``@settings``
so the tier-1 run stays fast without any profile.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "chaos",
    derandomize=True,
    deadline=None,
    max_examples=6,
    suppress_health_check=[HealthCheck.too_slow],
)

_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)
