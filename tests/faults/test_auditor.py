"""The auditor must catch exactly the corruption it claims to catch.

Each test wounds one internal invariant directly — a counter, a cache, a
clock — and asserts the matching check trips, names the right entity,
and (in strict mode) raises rather than collects.  A final test confirms
the auditor is read-only: an audited run executes the identical event
stream as an unaudited one.
"""

import pytest

from repro.core import Simulation, units
from repro.faults import (
    InvariantAuditor,
    InvariantViolation,
    InvariantViolationError,
)
from tests.test_failure_injection import build


def _audited_testbed(seed=1, strict=False):
    sim = Simulation(seed=seed)
    net = build(sim)
    auditor = InvariantAuditor(sim, every=50, strict=strict).install()
    sim.run_until(units.days(20.0))
    return sim, net, auditor


class TestCleanRuns:
    def test_healthy_run_has_zero_violations(self):
        _, _, auditor = _audited_testbed(strict=True)
        assert auditor.audits_run > 0
        assert auditor.violations == []

    def test_install_refuses_second_hook(self):
        sim = Simulation(seed=1)
        InvariantAuditor(sim).install()
        with pytest.raises(RuntimeError, match="already has an audit hook"):
            InvariantAuditor(sim).install()

    def test_auditing_does_not_change_the_event_stream(self):
        plain = Simulation(seed=9)
        build(plain)
        plain.run_until(units.days(30.0))
        audited = Simulation(seed=9)
        net = build(audited)
        InvariantAuditor(audited, every=100, strict=True).install()
        audited.run_until(units.days(30.0))
        assert audited.executed_events == plain.executed_events
        assert audited.topology_version == plain.topology_version
        assert sum(d.delivered for d in net.devices) > 0


class TestCorruptionDetection:
    def test_gateway_counter_corruption(self):
        sim, net, auditor = _audited_testbed()
        net.gateways[0].packets_forwarded += 7
        found = auditor.check_now()
        checks = {(v.check, v.entity) for v in found}
        assert ("link-conservation", net.gateways[0].name) in checks
        assert ("delivery-reality", None) in checks

    def test_device_loss_accounting_corruption(self):
        sim, net, auditor = _audited_testbed()
        device = net.devices[0]
        device.delivered = device.attempts + 1
        found = auditor.check_now()
        assert any(
            v.check == "link-conservation" and v.entity == device.name
            for v in found
        )

    def test_negative_energy_detected(self):
        from repro.energy import Capacitor, CathodicProtectionSource, HarvestingSystem

        sim, net, auditor = _audited_testbed()
        device = net.devices[0]
        device.power = HarvestingSystem(
            source=CathodicProtectionSource(nominal_power_w=2e-4),
            storage=Capacitor(capacity_j=0.02, stored_j=0.01),
        )
        device.power.storage.stored_j = -0.5
        found = auditor.check_now()
        assert any(
            v.check == "energy-bounds" and v.entity == device.name
            for v in found
        )

    def test_queue_accounting_corruption(self):
        sim, _, auditor = _audited_testbed()
        sim.events._live += 3
        found = auditor.check_now()
        assert any(v.check == "queue-accounting" for v in found)
        sim.events._live -= 3  # restore so teardown stays sane

    def test_topology_version_regression(self):
        sim, _, auditor = _audited_testbed()
        sim.topology_version -= 1
        found = auditor.check_now()
        assert any(
            v.check == "monotonicity" and "topology_version" in v.detail
            for v in found
        )

    def test_poisoned_candidate_cache(self):
        sim, net, auditor = _audited_testbed()
        device = net.devices[0]
        fresh = device.candidate_gateways()  # make the cache fresh
        assert device._candidate_version == sim.topology_version
        # Wrong length is a mismatch no matter what the true answer is.
        device._candidate_cache = list(fresh) + [net.gateways[0]]
        found = auditor.check_now()
        assert any(
            v.check == "cache-coherence" and v.entity == device.name
            for v in found
        )


class TestStrictMode:
    def test_strict_raises_with_structured_violation(self):
        sim, net, auditor = _audited_testbed(strict=True)
        net.gateways[1].packets_received += 1
        with pytest.raises(InvariantViolationError) as excinfo:
            auditor.check_now()
        violation = excinfo.value.violation
        assert isinstance(violation, InvariantViolation)
        assert violation.check == "link-conservation"
        assert violation.entity == net.gateways[1].name
        assert violation.time == sim.now
        assert violation.entity in str(violation)

    def test_collect_mode_accumulates_instead(self):
        sim, net, auditor = _audited_testbed(strict=False)
        net.gateways[0].packets_received += 1
        net.gateways[1].packets_received += 1
        first_sweep = auditor.check_now()
        assert len(first_sweep) >= 2
        assert auditor.violations == first_sweep

    def test_violation_renders_with_time_and_entity(self):
        violation = InvariantViolation(
            check="energy-bounds", time=12.5, entity="dev-3", detail="boom"
        )
        assert str(violation) == "[energy-bounds] t=12.5 dev-3: boom"
        anonymous = InvariantViolation(
            check="queue-accounting", time=0.0, entity=None, detail="off"
        )
        assert "<simulation>" in str(anonymous)
