"""Property-based guarantees of the fault-injection subsystem.

Three metamorphic/chaos properties, each over generated plans and seeds:

1. **Worker-count invariance** — a plan + seed produces a bit-identical
   executed fault event stream (and run statistics) whether the
   Monte-Carlo fan-out uses one worker or several processes.
2. **Commutative composition** — installing disjoint plans in either
   order yields the same executed fault stream and the same final
   system state, because every spec's randomness comes from a stream
   named by the spec's *content*, not its installation position.
3. **Uptime monotonicity** — adding a delivery-gating plan (faults that
   only gate the backhaul/cloud delivery path and provably shift no
   shared RNG draw) can never *increase* the E9-style weekly uptime of
   the same seed.  Not "on average": exactly, per seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Simulation, units
from repro.faults import (
    CustodianLapse,
    DegradeFault,
    FaultPlan,
    FlapFault,
    KillFault,
    Selector,
    WalletDrain,
)
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    EdgeDevice,
    Network,
    OwnedGateway,
    Position,
    associate_by_coverage,
)
from repro.radio import ieee802154
from repro.runtime import MonteCarloRunner, ScenarioTask

# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
# Builders take an injection time (seconds) and return one spec.  Any
# two drawn specs get distinct times, so their content keys — and hence
# their RNG streams — are always distinct.


def _kill_gateway(at):
    return KillFault(at=at, select=Selector.k_random(1, tier="gateway"))


def _degrade_backhaul(at):
    return DegradeFault(
        at=at, select=Selector.by_tier("backhaul"), duration=units.days(14.0)
    )


def _flap_backhaul(at):
    return FlapFault(
        at=at,
        select=Selector.by_tier("backhaul"),
        down=units.days(3.0),
        up=units.days(11.0),
        cycles=2,
    )


def _drain_wallet(at):
    return WalletDrain(at=at, fraction=0.75)


def _custodian_lapse(at):
    return CustodianLapse(at=at, duration=units.days(10.0))


def _degrade_cloud(at):
    return DegradeFault(
        at=at, select=Selector.by_tier("cloud"), duration=units.days(7.0)
    )


ALL_BUILDERS = (
    _kill_gateway,
    _degrade_backhaul,
    _flap_backhaul,
    _drain_wallet,
    _custodian_lapse,
    _degrade_cloud,
)
#: Builders whose specs are all delivery-gating (see module docstring).
GATING_BUILDERS = (
    _degrade_backhaul,
    _flap_backhaul,
    _drain_wallet,
    _custodian_lapse,
    _degrade_cloud,
)


def _plan(name, picks, builders):
    """Build a plan from drawn (day-offset, builder-index) pairs."""
    specs = tuple(
        builders[index % len(builders)](units.days(float(day)))
        for day, index in picks
    )
    return FaultPlan(name=name, specs=specs)


_picks = st.lists(
    st.tuples(
        st.integers(min_value=10, max_value=330),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda pair: pair[0],
)


# ----------------------------------------------------------------------
# 1. Worker-count invariance
# ----------------------------------------------------------------------
@settings(derandomize=True, deadline=None, max_examples=4)
@given(base_seed=st.integers(min_value=0, max_value=2**31 - 1), picks=_picks)
def test_fault_stream_identical_at_any_worker_count(base_seed, picks):
    plan = _plan("generated", picks, ALL_BUILDERS)
    task = ScenarioTask(
        "as-designed",
        horizon=units.years(1.0),
        report_interval=units.days(2.0),
        faults=plan,
    )
    serial = MonteCarloRunner(task, runs=3, base_seed=base_seed, workers=1).run()
    pooled = MonteCarloRunner(task, runs=3, base_seed=base_seed, workers=3).run()
    # wall_clock_s legitimately differs; everything deterministic must not.
    for left, right in zip(serial.runs, pooled.runs):
        assert left.seed == right.seed
        assert left.fault_stream == right.fault_stream
        assert left.faults_injected == right.faults_injected
        assert left.faults_fired == right.faults_fired
        assert left.sample == right.sample
        assert left.events_executed == right.events_executed
    assert serial.uptime == pooled.uptime


# ----------------------------------------------------------------------
# 2. Commutative composition of disjoint plans
# ----------------------------------------------------------------------
def _testbed(sim):
    """The small four-device / two-gateway topology used across suites."""
    cloud = CloudEndpoint(sim)
    backhaul = CampusBackhaul(sim)
    backhaul.add_dependency(cloud)
    gateways = []
    for index in range(2):
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(30.0 * index, 0.0),
        )
        gateway.add_dependency(backhaul)
        gateways.append(gateway)
    devices = []
    for index in range(4):
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.hours(6.0),
            position=Position(10.0 + 10.0 * index, 5.0),
        )
        devices.append(device)
    associate_by_coverage(devices, gateways, max_gateways_per_device=2)
    net = Network(
        sim=sim, endpoint=cloud, backhauls=[backhaul], gateways=gateways,
        devices=devices,
    )
    net.deploy_all()
    return net


def _snapshot(sim):
    """Order-independent final-state fingerprint of every entity."""
    rows = []
    for entity in sim.entities:
        rows.append(
            (
                entity.name,
                entity.alive,
                getattr(entity, "delivered", None),
                getattr(entity, "attempts", None),
                getattr(entity, "packets_received", None),
                getattr(entity, "packets_forwarded", None),
            )
        )
    return tuple(sorted(rows))


def _run_composed(seed, plans):
    sim = Simulation(seed=seed)
    _testbed(sim)
    for plan in plans:
        sim.install_faults(plan)
    sim.run_until(units.months(8.0))
    return sim.fault_controller.stream_tuple(), _snapshot(sim)


@settings(derandomize=True, deadline=None, max_examples=6)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    picks=st.lists(
        st.tuples(
            st.integers(min_value=5, max_value=200),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=2,
        max_size=4,
        unique_by=lambda pair: pair[0],
    ),
)
def test_disjoint_plans_compose_commutatively(seed, picks):
    half = len(picks) // 2
    plan_a = _plan("a", picks[:half], ALL_BUILDERS)
    plan_b = _plan("b", picks[half:], ALL_BUILDERS)
    stream_ab, state_ab = _run_composed(seed, [plan_a, plan_b])
    stream_ba, state_ba = _run_composed(seed, [plan_b, plan_a])
    assert sorted(stream_ab) == sorted(stream_ba)
    assert state_ab == state_ba
    # And composing as a single summed plan is the same thing again.
    stream_sum, state_sum = _run_composed(seed, [plan_a + plan_b])
    assert sorted(stream_sum) == sorted(stream_ab)
    assert state_sum == state_ab


# ----------------------------------------------------------------------
# 3. Delivery-gating faults never increase weekly uptime
# ----------------------------------------------------------------------
@settings(derandomize=True, deadline=None, max_examples=4)
@given(
    base_seed=st.integers(min_value=0, max_value=2**31 - 1),
    picks=st.lists(
        st.tuples(
            st.integers(min_value=10, max_value=330),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=3,
        unique_by=lambda pair: pair[0],
    ),
)
def test_gating_plan_never_increases_uptime(base_seed, picks):
    plan = _plan("gating", picks, GATING_BUILDERS)
    assert plan.delivery_gating  # precondition of the exact comparison
    base_task = ScenarioTask(
        "as-designed", horizon=units.years(1.5), report_interval=units.days(2.0)
    )
    fault_task = ScenarioTask(
        "as-designed",
        horizon=units.years(1.5),
        report_interval=units.days(2.0),
        faults=plan,
    )
    base = MonteCarloRunner(base_task, runs=2, base_seed=base_seed).run()
    wounded = MonteCarloRunner(fault_task, runs=2, base_seed=base_seed).run()
    for clean, hurt in zip(base.runs, wounded.runs):
        assert clean.seed == hurt.seed
        # Exact per-seed dominance, not a statistical claim: a gating
        # fault can only remove deliveries from the identical trajectory.
        assert hurt.sample <= clean.sample
