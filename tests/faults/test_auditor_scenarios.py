"""Every canned scenario must hold every runtime invariant, always.

This is the "always-on" half of the tentpole: the full check battery
runs strict — first violation raises — inside every scenario the repo
ships, and again under the pinned ten-fault chaos plan.  A latent
bookkeeping bug anywhere in the stack (device loss accounting, gateway
drop categories, queue counters, topology caches) fails here with the
entity and sim-time attached, instead of washing into an E-benchmark
aggregate.
"""

from dataclasses import replace

import pytest

from repro.core import units
from repro.experiment import SCENARIOS, FiftyYearExperiment
from repro.faults import InvariantAuditor, pinned_chaos_plan


def _audited_run(name, seed=2021, years=1.0, faults=None):
    config = SCENARIOS[name](seed)
    config = replace(
        config,
        horizon=units.years(years),
        report_interval=units.days(2.0),
    )
    experiment = FiftyYearExperiment(config)
    if faults is not None:
        experiment.sim.install_faults(faults)
    auditor = InvariantAuditor(
        experiment.sim, every=1000, strict=True
    ).install()
    experiment.run()
    auditor.check_now()  # one final sweep at the horizon
    return auditor


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_holds_all_invariants(name):
    auditor = _audited_run(name)
    assert auditor.audits_run > 1  # the hook actually ran mid-flight
    assert auditor.violations == []


def test_as_designed_holds_invariants_under_chaos_plan():
    # Three years covers the plan's first two faults (year-2 backhaul
    # degrade window included); the golden fixture covers the full run.
    auditor = _audited_run("as-designed", years=3.0, faults=pinned_chaos_plan())
    assert auditor.audits_run > 1
    assert auditor.violations == []
