"""Tests for repro.reliability.survival."""

import numpy as np
import pytest

from repro.reliability import (
    kaplan_meier,
    piecewise_hazard,
    restricted_mean_survival,
)


class TestKaplanMeier:
    def test_no_censoring_is_empirical_survival(self):
        curve = kaplan_meier([1.0, 2.0, 3.0, 4.0])
        assert curve.at(0.5) == 1.0
        assert curve.at(1.0) == pytest.approx(0.75)
        assert curve.at(2.5) == pytest.approx(0.5)
        assert curve.at(4.0) == pytest.approx(0.0)

    def test_censoring_inflates_survival(self):
        all_fail = kaplan_meier([1.0, 2.0, 3.0], [True, True, True])
        censored = kaplan_meier([1.0, 2.0, 3.0], [True, True, False])
        assert censored.at(3.0) > all_fail.at(3.0)

    def test_textbook_example(self):
        # Failures at 1 and 2, censored at 3: S(2) = (1-1/3)(1-1/2) = 1/3.
        curve = kaplan_meier([1.0, 2.0, 3.0], [True, True, False])
        assert curve.at(2.0) == pytest.approx(1.0 / 3.0)

    def test_tied_failures(self):
        curve = kaplan_meier([2.0, 2.0, 4.0])
        assert curve.at(2.0) == pytest.approx(1.0 / 3.0)

    def test_median(self):
        curve = kaplan_meier([1.0, 2.0, 3.0, 4.0])
        assert curve.median() == 2.0

    def test_median_none_when_mostly_censored(self):
        curve = kaplan_meier([1.0, 5.0, 5.0, 5.0], [True, False, False, False])
        assert curve.median() is None

    def test_quantile(self):
        curve = kaplan_meier([1.0, 2.0, 3.0, 4.0])
        assert curve.quantile(0.25) == 1.0
        with pytest.raises(ValueError):
            curve.quantile(1.5)

    def test_at_negative_time_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([1.0]).at(-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([])

    def test_mismatched_observed_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([1.0, 2.0], [True])

    def test_recovers_exponential_survival(self, rng):
        draws = rng.exponential(10.0, size=5000)
        curve = kaplan_meier(draws)
        assert curve.at(10.0) == pytest.approx(np.exp(-1.0), abs=0.03)


class TestRestrictedMean:
    def test_all_survive_window(self):
        curve = kaplan_meier([100.0, 100.0], [False, False])
        assert restricted_mean_survival(curve, 10.0) == pytest.approx(10.0)

    def test_deterministic_failures(self):
        # Both fail at t=5; RMS over 10 is 5.
        curve = kaplan_meier([5.0, 5.0])
        assert restricted_mean_survival(curve, 10.0) == pytest.approx(5.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            restricted_mean_survival(kaplan_meier([1.0]), 0.0)


class TestPiecewiseHazard:
    def test_constant_hazard_recovered(self, rng):
        draws = rng.exponential(10.0, size=20000)
        edges, hazards = piecewise_hazard(
            draws, np.ones(len(draws), dtype=bool), [0.0, 5.0, 10.0, 20.0]
        )
        assert hazards == pytest.approx([0.1, 0.1, 0.1], rel=0.1)

    def test_empty_bin_zero(self):
        edges, hazards = piecewise_hazard([1.0], [True], [0.0, 2.0, 4.0])
        assert hazards[1] == 0.0

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            piecewise_hazard([1.0], [True], [0.0])
        with pytest.raises(ValueError):
            piecewise_hazard([1.0], [True], [0.0, 0.0])
