"""Tests for repro.reliability.distributions."""

import math

import numpy as np
import pytest

from repro.core import units
from repro.reliability import (
    CompetingRisks,
    Deterministic,
    Exponential,
    LogNormal,
    Weibull,
    bathtub,
    mean_lifetime_years,
)


class TestExponential:
    def test_mean(self):
        assert Exponential(scale=100.0).mean() == 100.0

    def test_survival_at_mean(self):
        assert Exponential(scale=1.0).survival(1.0) == pytest.approx(math.exp(-1))

    def test_survival_at_zero(self):
        assert Exponential(scale=1.0).survival(0.0) == 1.0

    def test_constant_hazard(self):
        d = Exponential(scale=10.0)
        assert d.hazard(1.0) == d.hazard(100.0) == 0.1

    def test_sample_mean_converges(self, rng):
        draws = Exponential(scale=5.0).sample(rng, 20000)
        assert draws.mean() == pytest.approx(5.0, rel=0.05)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Exponential(scale=0.0)


class TestWeibull:
    def test_mean_shape_one_equals_scale(self):
        assert Weibull(shape=1.0, scale=7.0).mean() == pytest.approx(7.0)

    def test_characteristic_life(self):
        # Survival at the scale parameter is always e^-1.
        for shape in (0.5, 1.0, 3.0):
            d = Weibull(shape=shape, scale=10.0)
            assert d.survival(10.0) == pytest.approx(math.exp(-1))

    def test_wearout_hazard_increases(self):
        d = Weibull(shape=4.0, scale=10.0)
        assert d.hazard(9.0) > d.hazard(5.0) > d.hazard(1.0)

    def test_infant_hazard_decreases(self):
        d = Weibull(shape=0.5, scale=10.0)
        assert d.hazard(1.0) > d.hazard(5.0) > d.hazard(9.0)

    def test_sample_mean_converges(self, rng):
        d = Weibull(shape=2.0, scale=10.0)
        draws = d.sample(rng, 20000)
        assert draws.mean() == pytest.approx(d.mean(), rel=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Weibull(shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            Weibull(shape=1.0, scale=-1.0)


class TestLogNormal:
    def test_survival_at_median_is_half(self):
        assert LogNormal(median=10.0, sigma=0.5).survival(10.0) == pytest.approx(0.5)

    def test_mean_exceeds_median(self):
        d = LogNormal(median=10.0, sigma=1.0)
        assert d.mean() > 10.0

    def test_mean_formula(self):
        d = LogNormal(median=10.0, sigma=0.5)
        assert d.mean() == pytest.approx(10.0 * math.exp(0.125))

    def test_sample_median_converges(self, rng):
        draws = LogNormal(median=10.0, sigma=0.8).sample(rng, 20000)
        assert np.median(draws) == pytest.approx(10.0, rel=0.05)

    def test_hazard_positive(self):
        d = LogNormal(median=10.0, sigma=0.5)
        assert d.hazard(5.0) > 0.0
        assert d.hazard(0.0) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=0.0)


class TestDeterministic:
    def test_step_survival(self):
        d = Deterministic(value=5.0)
        assert d.survival(4.99) == 1.0
        assert d.survival(5.0) == 0.0

    def test_sample_is_constant(self, rng):
        draws = Deterministic(value=3.0).sample(rng, 10)
        assert (draws == 3.0).all()

    def test_mean(self):
        assert Deterministic(value=3.0).mean() == 3.0


class TestCompetingRisks:
    def test_survival_is_product(self):
        a = Exponential(scale=10.0)
        b = Exponential(scale=20.0)
        cr = CompetingRisks(risks=(a, b))
        t = 5.0
        assert cr.survival(t) == pytest.approx(a.survival(t) * b.survival(t))

    def test_hazard_is_sum(self):
        a = Exponential(scale=10.0)
        b = Exponential(scale=20.0)
        cr = CompetingRisks(risks=(a, b))
        assert cr.hazard(1.0) == pytest.approx(0.1 + 0.05)

    def test_two_exponentials_mean(self):
        # min(Exp(a), Exp(b)) is Exp with rate a^-1 + b^-1.
        cr = CompetingRisks(risks=(Exponential(10.0), Exponential(10.0)))
        assert cr.mean() == pytest.approx(5.0, rel=0.02)

    def test_sample_below_each_constituent(self, rng):
        cr = CompetingRisks(risks=(Weibull(3.0, 10.0), Exponential(5.0)))
        draws = cr.sample(rng, 5000)
        assert draws.mean() < 5.0 + 1.0  # strictly less than weaker risk

    def test_empty_risks_rejected(self):
        with pytest.raises(ValueError):
            CompetingRisks(risks=())

    def test_dominated_by_weakest(self, rng):
        weak = Weibull(shape=6.0, scale=units.years(5.0))
        strong = Weibull(shape=6.0, scale=units.years(80.0))
        cr = CompetingRisks(risks=(weak, strong))
        assert mean_lifetime_years(cr) == pytest.approx(
            mean_lifetime_years(weak), rel=0.1
        )


class TestBathtub:
    def test_hazard_is_bathtub_shaped(self):
        model = bathtub()
        early = model.hazard(units.years(0.05))
        middle = model.hazard(units.years(8.0))
        late = model.hazard(units.years(25.0))
        assert early > middle
        assert late > middle

    def test_mean_in_plausible_range(self):
        years = mean_lifetime_years(bathtub())
        assert 8.0 < years < 30.0
