"""Tests for repro.reliability.maintenance."""

import pytest

from repro.core import units
from repro.reliability import (
    AttentionBudget,
    MaintenanceLedger,
    fleet_replacement_hours,
)


class TestFleetReplacementHours:
    def test_paper_la_arithmetic(self):
        # 320k poles + 61,315 intersections + 210k streetlights at 20 min
        # each: "nearly 200,000 person-hours" (§1).
        hours = fleet_replacement_hours(320_000 + 61_315 + 210_000)
        assert 190_000 < hours < 200_000
        assert hours == pytest.approx(197_105.0)

    def test_scaling_linear(self):
        assert fleet_replacement_hours(600) == 2.0 * fleet_replacement_hours(300)

    def test_custom_minutes(self):
        assert fleet_replacement_hours(60, minutes_per_device=60.0) == 60.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fleet_replacement_hours(-1)
        with pytest.raises(ValueError):
            fleet_replacement_hours(1, minutes_per_device=0.0)


class TestMaintenanceLedger:
    def _ledger(self):
        ledger = MaintenanceLedger()
        ledger.log(units.years(1.0), "gateway", "gw-1", "replace", 2.0, 900.0)
        ledger.log(units.years(2.0), "gateway", "gw-2", "repair", 1.0, 100.0)
        ledger.log(units.years(3.0), "backhaul", "fiber-1", "inspect", 0.5, 0.0)
        return ledger

    def test_totals(self):
        ledger = self._ledger()
        assert ledger.total_hours() == 3.5
        assert ledger.total_cost() == 1000.0

    def test_tier_filter(self):
        ledger = self._ledger()
        assert ledger.total_hours(tier="gateway") == 3.0
        assert ledger.total_cost(tier="backhaul") == 0.0

    def test_count_filters(self):
        ledger = self._ledger()
        assert ledger.count() == 3
        assert ledger.count(tier="gateway") == 2
        assert ledger.count(action="replace") == 1

    def test_by_tier(self):
        assert self._ledger().by_tier() == {"gateway": 3.0, "backhaul": 0.5}

    def test_hours_per_year(self):
        assert self._ledger().hours_per_year(units.years(7.0)) == pytest.approx(0.5)

    def test_device_touches_zero(self):
        # The experiment's constraint: no device-tier interventions.
        assert self._ledger().device_touches() == 0

    def test_negative_hours_rejected(self):
        with pytest.raises(ValueError):
            MaintenanceLedger().log(0.0, "device", "d", "replace", -1.0)


class TestAttentionBudget:
    def test_annual_supply(self):
        assert AttentionBudget(staff=2).annual_supply() == 3600.0

    def test_sustainable_fleet_scales_with_mtbf(self):
        budget = AttentionBudget(staff=2)
        short = budget.sustainable_fleet(device_mtbf_years=5.0)
        long = budget.sustainable_fleet(device_mtbf_years=50.0)
        assert long == 10 * short

    def test_paper_scale_requires_long_mtbf(self):
        # LA: ~591k devices.  A 10-person crew can only sustain that
        # fleet if device MTBF reaches decades.
        budget = AttentionBudget(staff=10)
        assert budget.sustainable_fleet(device_mtbf_years=5.0) < 591_315
        assert budget.sustainable_fleet(device_mtbf_years=15.0) > 591_315

    def test_hours_per_device_falls_with_scale(self):
        # §3.1: "as the number of devices grows, the available hours per
        # device falls."
        budget = AttentionBudget(staff=5)
        assert budget.hours_per_device(10_000) < budget.hours_per_device(1_000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            AttentionBudget(staff=1).sustainable_fleet(device_mtbf_years=0.0)
        with pytest.raises(ValueError):
            AttentionBudget(staff=1).hours_per_device(0)
