"""Tests for repro.reliability.failure."""

import numpy as np
import pytest

from repro.core import Entity, units
from repro.reliability import (
    Deterministic,
    Exponential,
    FailureProcess,
    RenewalProcess,
    sample_fleet_lifetimes,
)


class Node(Entity):
    TIER = "device"


class TestFailureProcess:
    def test_entity_fails_at_sampled_time(self, sim):
        node = Node(sim)
        node.deploy()
        process = FailureProcess(sim, node, Deterministic(value=100.0))
        when = process.arm()
        assert when == 100.0
        sim.run_until(99.0)
        assert node.alive
        sim.run_until(101.0)
        assert not node.alive

    def test_disarm_prevents_failure(self, sim):
        node = Node(sim)
        node.deploy()
        process = FailureProcess(sim, node, Deterministic(value=100.0))
        process.arm()
        process.disarm()
        sim.run_until(200.0)
        assert node.alive

    def test_double_arm_rejected(self, sim):
        node = Node(sim)
        node.deploy()
        process = FailureProcess(sim, node, Deterministic(value=100.0))
        process.arm()
        with pytest.raises(RuntimeError):
            process.arm()

    def test_failure_reason_recorded(self, sim):
        node = Node(sim)
        node.deploy()
        FailureProcess(sim, node, Deterministic(value=10.0), reason="battery").arm()
        sim.run_until(20.0)
        fails = sim.records("fail")
        assert fails[0].data["reason"] == "battery"

    def test_retired_entity_failure_is_noop(self, sim):
        node = Node(sim)
        node.deploy()
        FailureProcess(sim, node, Deterministic(value=10.0)).arm()
        node.retire(reason="upgrade")
        sim.run_until(20.0)
        assert node.state.value == "retired"


class TestRenewalProcess:
    def _renewal(self, sim, lifetime=100.0, delay=10.0):
        node = Node(sim)
        node.deploy()
        renewal = RenewalProcess(
            sim,
            node,
            Deterministic(value=lifetime),
            entity_factory=lambda: Node(sim),
            logistics_delay=delay,
            labor_hours_per_swap=0.5,
        )
        renewal.start()
        return renewal

    def test_replacement_after_delay(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=10.0)
        sim.run_until(105.0)
        assert renewal.replacement_count == 0
        sim.run_until(111.0)
        assert renewal.replacement_count == 1
        assert renewal.current.alive

    def test_repeats_indefinitely(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=0.0)
        sim.run_until(350.0)
        assert renewal.replacement_count == 3

    def test_labor_accrues(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=0.0)
        sim.run_until(250.0)
        assert renewal.total_labor_hours == pytest.approx(1.0)

    def test_history_records_names_and_times(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=10.0)
        sim.run_until(120.0)
        record = renewal.history[0]
        assert record.failed_at == 100.0
        assert record.replaced_at == 110.0

    def test_stop_halts_replacement(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=10.0)
        renewal.stop()
        sim.run_until(500.0)
        assert renewal.replacement_count == 0

    def test_stop_after_failure_before_replacement(self, sim):
        renewal = self._renewal(sim, lifetime=100.0, delay=50.0)
        sim.run_until(120.0)  # failed at 100, replacement pending at 150
        renewal.stop()
        sim.run_until(500.0)
        assert renewal.replacement_count == 0

    def test_negative_delay_rejected(self, sim):
        node = Node(sim)
        with pytest.raises(ValueError):
            RenewalProcess(
                sim, node, Deterministic(1.0), lambda: Node(sim), logistics_delay=-1.0
            )

    def test_stochastic_renewal_rate(self, sim):
        # Exponential(1yr) lifetimes, instant replacement: expect ~N
        # replacements in N years (renewal theory), loosely.
        node = Node(sim)
        node.deploy()
        renewal = RenewalProcess(
            sim,
            node,
            Exponential(scale=units.years(1.0)),
            entity_factory=lambda: Node(sim),
            logistics_delay=0.0,
        )
        renewal.start()
        sim.run_until(units.years(30.0))
        assert 15 <= renewal.replacement_count <= 50


class TestSampleFleetLifetimes:
    def test_shape_and_positivity(self, rng):
        draws = sample_fleet_lifetimes(Exponential(scale=5.0), 100, rng)
        assert draws.shape == (100,)
        assert (draws > 0).all()

    def test_zero_n_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_fleet_lifetimes(Exponential(scale=5.0), 0, rng)
