"""Tests for repro.reliability.components."""

import pytest

from repro.core import units
from repro.reliability import (
    battery_powered_device,
    ceramic_capacitor,
    device_lifetime_model,
    dominant_risk,
    electrolytic_capacitor,
    energy_harvesting_device,
    gateway_platform,
    harvester_transducer,
    mcu_flash,
    mean_lifetime_years,
    pcb_substrate,
    primary_battery,
    rechargeable_battery,
    solder_joints,
)


class TestIndividualComponents:
    def test_primary_battery_mean_near_nominal(self):
        c = primary_battery(nominal_years=10.0)
        assert 8.0 < c.mean_years() < 11.0

    def test_rechargeable_cycle_bound(self):
        c = rechargeable_battery(cycle_life=3650, cycles_per_day=1.0)
        assert c.mean_years() == pytest.approx(10.0, rel=0.15)

    def test_rechargeable_invalid_rate(self):
        with pytest.raises(ValueError):
            rechargeable_battery(cycles_per_day=0.0)

    def test_electrolytic_arrhenius_doubling(self):
        cool = electrolytic_capacitor(ambient_temp_c=35.0)
        hot = electrolytic_capacitor(ambient_temp_c=65.0)
        # 30 C hotter = 3 doublings = 8x shorter life.
        assert cool.mean_years() / hot.mean_years() == pytest.approx(8.0, rel=0.01)

    def test_ceramic_outlasts_electrolytic(self):
        assert ceramic_capacitor().mean_years() > electrolytic_capacitor().mean_years()

    def test_pcb_classes_ordered(self):
        lives = [pcb_substrate(c).mean_years() for c in (1, 2, 3)]
        assert lives[0] < lives[1] < lives[2]

    def test_pcb_invalid_class(self):
        with pytest.raises(ValueError):
            pcb_substrate(quality_class=4)

    def test_solder_scales_with_cycling(self):
        gentle = solder_joints(thermal_cycles_per_day=0.5)
        harsh = solder_joints(thermal_cycles_per_day=4.0)
        assert gentle.mean_years() > harsh.mean_years()

    def test_flash_scales_with_writes(self):
        journaling = mcu_flash(write_cycles_per_day=24.0)
        quiet = mcu_flash(write_cycles_per_day=0.05)
        assert quiet.mean_years() > 100.0 * journaling.mean_years() / 10.0

    def test_harvester_kinds(self):
        for kind in ("cathodic", "solar", "vibration", "thermal"):
            assert harvester_transducer(kind).mean_years() > 15.0

    def test_harvester_unknown_kind(self):
        with pytest.raises(ValueError):
            harvester_transducer("fusion")


class TestCompositeDevices:
    def test_battery_device_matches_conventional_wisdom(self):
        # §1: batteries/caps/PCBs hold mean lifetime to ~10-15 years.
        years = mean_lifetime_years(battery_powered_device())
        assert 8.0 <= years <= 16.0

    def test_harvesting_device_beats_battery_device(self):
        battery = mean_lifetime_years(battery_powered_device())
        harvest = mean_lifetime_years(energy_harvesting_device())
        assert harvest > 2.0 * battery

    def test_battery_is_dominant_risk(self, rng):
        model = battery_powered_device()
        ranked = dominant_risk(model, rng, n=3000)
        # risk index 0 is the battery; it should lead the failure causes.
        assert ranked[0][0] == 0
        assert ranked[0][1] > 0.35

    def test_gateway_platform_single_digit_years(self):
        years = mean_lifetime_years(gateway_platform())
        assert 4.0 < years < 12.0

    def test_non_networked_gateway_lasts_longer(self, rng):
        networked = gateway_platform(networked=True).sample(rng, 4000).mean()
        isolated = gateway_platform(networked=False).sample(rng, 4000).mean()
        assert isolated > networked

    def test_factory_kinds(self):
        for kind in ("battery", "battery-premium", "harvesting", "harvesting-solar", "gateway"):
            model = device_lifetime_model(kind)
            assert model.mean() > units.years(1.0)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            device_lifetime_model("quantum")

    def test_premium_battery_beats_standard(self):
        std = mean_lifetime_years(device_lifetime_model("battery"))
        premium = mean_lifetime_years(device_lifetime_model("battery-premium"))
        assert premium > std
