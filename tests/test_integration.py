"""Cross-module integration tests: whole-system behaviours the paper
argues for, exercised end to end through the public API."""

import pytest

from repro.core import Simulation, units
from repro.core.policy import AttachmentPolicy
from repro.energy import Capacitor, CathodicProtectionSource, HarvestingSystem
from repro.net import (
    CampusBackhaul,
    CellularBackhaul,
    CloudEndpoint,
    EdgeDevice,
    Network,
    OwnedGateway,
    Position,
    associate_by_coverage,
)
from repro.radio import ieee802154
from repro.reliability import kaplan_meier


def build_city_block(sim, n_devices=6, backhaul_cls=CampusBackhaul, **backhaul_kwargs):
    """A little deployment: cloud <- backhaul <- 2 gateways <- devices."""
    cloud = CloudEndpoint(sim)
    backhaul = backhaul_cls(sim, **backhaul_kwargs)
    backhaul.add_dependency(cloud)
    gateways = []
    for position in (Position(0, 0), Position(120, 0)):
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=position,
        )
        gateway.add_dependency(backhaul)
        gateways.append(gateway)
    devices = []
    for index in range(n_devices):
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.hours(6.0),
            position=Position(10.0 + 20.0 * index, 10.0),
            power=HarvestingSystem(
                source=CathodicProtectionSource(),
                storage=Capacitor(capacity_j=2.0, stored_j=1.0),
            ),
        )
        devices.append(device)
    associate_by_coverage(devices, gateways, max_gateways_per_device=2)
    net = Network(
        sim=sim, endpoint=cloud, backhauls=[backhaul], gateways=gateways, devices=devices
    )
    net.deploy_all()
    return net


class TestEndToEndDelivery:
    def test_year_of_weekly_uptime(self):
        sim = Simulation(seed=5)
        net = build_city_block(sim)
        sim.run_until(units.years(1.0))
        report = net.endpoint.weekly_uptime(0.0, units.years(1.0))
        assert report.uptime == 1.0
        assert net.delivery_summary().delivery_rate > 0.7

    def test_energy_neutral_over_years(self):
        sim = Simulation(seed=6)
        net = build_city_block(sim, n_devices=2)
        sim.run_until(units.years(3.0))
        for device in net.devices:
            assert device.energy_denied == 0
            assert not device.power.browned_out


class TestInfrastructureDependency:
    def test_cellular_sunset_kills_end_to_end_service(self):
        # §3.4: "device owners have no option ... devices must be replaced."
        sim = Simulation(seed=7)
        net = build_city_block(
            sim,
            backhaul_cls=CellularBackhaul,
            generation="2G",
            sunset_at=units.years(1.0),
        )
        sim.run_until(units.years(2.0))
        before = net.endpoint.weekly_uptime(0.0, units.years(1.0))
        after = net.endpoint.weekly_uptime(units.years(1.0), units.years(2.0))
        assert before.uptime > 0.95
        assert after.uptime == 0.0
        # Devices are all still alive: working hardware, zero service.
        assert all(d.alive for d in net.devices)
        assert net.hierarchy.stranded_devices() == net.hierarchy.tier("device")

    def test_gateway_redundancy_masks_single_failure(self):
        sim = Simulation(seed=8)
        net = build_city_block(sim)
        sim.call_at(units.months(6.0), net.gateways[0].fail)
        sim.run_until(units.years(1.0))
        report = net.endpoint.weekly_uptime(0.0, units.years(1.0))
        assert report.uptime == 1.0  # second gateway carries the block


class TestSurvivalAnalysisPipeline:
    def test_kaplan_meier_on_simulated_fleet(self, rng):
        # Sample a harvesting fleet, censor at a 50-year study window,
        # and verify the estimator reproduces the model's survival.
        from repro.reliability import energy_harvesting_device

        model = energy_harvesting_device()
        lifetimes = model.sample(rng, 3000)
        window = units.years(50.0)
        observed = lifetimes <= window
        durations = lifetimes.clip(max=window)
        curve = kaplan_meier(durations, observed)
        t_check = units.years(20.0)
        assert curve.at(t_check) == pytest.approx(model.survival(t_check), abs=0.03)


class TestAttachmentPolicyEndToEnd:
    def test_stranded_fraction_policy_gap(self):
        # Same physical deployment; instance-bound devices lose service
        # when their gateway dies, compliant devices keep reporting.
        outcomes = {}
        for policy in (AttachmentPolicy.ANY_COMPATIBLE, AttachmentPolicy.INSTANCE_BOUND):
            sim = Simulation(seed=9)
            cloud = CloudEndpoint(sim)
            backhaul = CampusBackhaul(sim)
            backhaul.add_dependency(cloud)
            gateways = []
            for position in (Position(0, 0), Position(40, 0)):
                gateway = OwnedGateway(
                    sim,
                    spec=ieee802154.default_spec(),
                    path_loss=ieee802154.urban_path_loss(),
                    position=position,
                )
                gateway.add_dependency(backhaul)
                gateways.append(gateway)
            device = EdgeDevice(
                sim,
                technology="802.15.4",
                spec=ieee802154.default_spec(),
                airtime_s=ieee802154.airtime_s(24),
                report_interval=units.hours(6.0),
                position=Position(5, 5),
                attachment=policy,
            )
            device.add_dependency(gateways[0])
            device.add_dependency(gateways[1])
            cloud.deploy()
            backhaul.deploy()
            for g in gateways:
                g.deploy()
            device.deploy()
            sim.call_at(units.months(1.0), gateways[0].fail)
            sim.run_until(units.years(1.0))
            outcomes[policy] = device.delivery_rate
        assert outcomes[AttachmentPolicy.ANY_COMPATIBLE] > 0.8
        assert outcomes[AttachmentPolicy.INSTANCE_BOUND] < 0.2
