"""Unit tests for repro.obs instruments and the MetricsRegistry."""

import pickle

import pytest

from repro.obs import (
    EMPTY_SNAPSHOT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    canonical_labels,
)


class TestCounter:
    def test_starts_at_zero_and_bumps(self):
        c = Counter("x_total", ())
        assert c.value == 0
        c.value += 1
        c.inc()
        c.inc(3)
        assert c.value == 5

    def test_slots_no_dict(self):
        counter = Counter("x_total", ())
        with pytest.raises(AttributeError):
            counter.extra = 1


class TestGauge:
    def test_rejects_unknown_agg(self):
        with pytest.raises(ValueError, match="agg must be one of"):
            Gauge("g", (), agg="last")

    def test_set_and_read(self):
        g = Gauge("g", (), agg="max")
        g.set(7)
        assert g.read() == 7

    def test_lazy_reads_callable(self):
        box = {"v": 0}
        g = Gauge("g", (), agg="sum", fn=lambda: box["v"])
        box["v"] = 42
        assert g.read() == 42


class TestHistogram:
    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (), edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (), edges=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", (), edges=())

    def test_observe_buckets_inclusive_upper_and_overflow(self):
        h = Histogram("h", (), edges=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # upper-inclusive: 1.0 lands in the first bucket, 10.0 in the
        # second, 11.0 in the overflow bucket.
        assert h.bucket_counts == [2, 2, 1]
        assert h.count == 5
        assert sum(h.bucket_counts) == h.count


class TestRegistryKeying:
    def test_counter_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", tier="device", entity="d1")
        b = reg.counter("x_total", entity="d1", tier="device")
        assert a is b  # label order cannot mint a second instrument
        assert len(reg) == 1

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", entity="d1")
        b = reg.counter("x_total", entity="d2")
        assert a is not b
        a.value += 3
        assert reg.total("x_total") == 3
        assert reg.total("x_total", entity="d2") == 0

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as Counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered as Counter"):
            reg.histogram("x", edges=(1.0,))

    def test_gauge_agg_bound_per_name(self):
        reg = MetricsRegistry()
        reg.gauge("g", agg="max", entity="a")
        with pytest.raises(ValueError, match="agg"):
            reg.gauge("g", agg="sum", entity="b")

    def test_gauge_fn_reregistration_replaces_callable(self):
        reg = MetricsRegistry()
        reg.gauge_fn("g", lambda: 1, agg="max")
        reg.gauge_fn("g", lambda: 2, agg="max")
        assert reg.snapshot().gauge_value("g") == 2

    def test_histogram_edges_fixed_at_first_registration(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0, 2.0), entity="a")
        # Same name, new label set: inherits the bound edges.
        h2 = reg.histogram("h", entity="b")
        assert h2.edges == (1.0, 2.0)
        with pytest.raises(ValueError, match="already registered with edges"):
            reg.histogram("h", edges=(5.0,), entity="c")
        with pytest.raises(ValueError, match="needs edges"):
            reg.histogram("fresh")

    def test_contains(self):
        reg = MetricsRegistry()
        reg.counter("x")
        assert "x" in reg
        assert "y" not in reg


class TestSnapshotting:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("c", tier="device").value = 4
        reg.gauge("g", agg="max").set(9)
        reg.gauge_fn("lazy", lambda: 13, agg="sum")
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        return reg

    def test_registration_order_cannot_change_snapshot(self):
        a = MetricsRegistry()
        a.counter("b_total").value = 1
        a.counter("a_total").value = 2
        b = MetricsRegistry()
        b.counter("a_total").value = 2
        b.counter("b_total").value = 1
        assert a.snapshot() == b.snapshot()

    def test_snapshot_pickles_and_round_trips(self):
        snap = self.build().snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap

    def test_reads(self):
        snap = self.build().snapshot()
        assert snap.counter_value("c") == 4
        assert snap.counter_value("c", tier="device") == 4
        assert snap.counter_value("c", tier="gateway") == 0
        assert snap.counter_value("missing") == 0
        assert snap.gauge_value("g") == 9
        assert snap.gauge_value("lazy") == 13
        assert snap.gauge_value("missing") == 0
        edges, buckets = snap.histogram_buckets("h")
        assert edges == (1.0,)
        assert buckets == (1, 0)

    def test_empty(self):
        assert EMPTY_SNAPSHOT.empty
        assert not self.build().snapshot().empty


class TestCanonicalLabels:
    def test_sorted_and_stringified(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
