"""Exporter (JSONL / Prometheus) and EventTracer tests."""

import json

import pytest

from repro.core.engine import Simulation
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    SnapshotStreamWriter,
    load_snapshot_line,
    read_jsonl,
    snapshot_json,
    to_prometheus,
    write_jsonl,
    write_metrics,
)


def sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("c_total", tier="device").value = 3
    reg.gauge("g", agg="max").set(7)
    h = reg.histogram("h_seconds", edges=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)
    h.observe(99.0)
    return reg.snapshot()


class TestJsonl:
    def test_line_is_canonical_and_meta_rides_along(self):
        snap = sample_snapshot()
        line = snapshot_json(snap, run=2, seed=17)
        assert "\n" not in line
        # Canonical: re-serializing the parsed payload reproduces the bytes.
        assert json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        ) == line
        meta, clone = load_snapshot_line(line)
        assert meta == {"run": 2, "seed": 17}
        assert clone == snap

    def test_write_jsonl_round_trips(self, tmp_path):
        snap = sample_snapshot()
        path = tmp_path / "m.jsonl"
        n = write_jsonl(str(path), [({"run": 0}, snap), ({"run": 1}, snap)])
        assert n == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert load_snapshot_line(lines[1])[0] == {"run": 1}

    def test_write_metrics_appends_merged_line(self, tmp_path):
        snap = sample_snapshot()
        path = tmp_path / "m.jsonl"
        n = write_metrics(
            str(path),
            [({"run": 0}, snap)],
            merged=({"merged": True}, snap.merge(snap)),
        )
        assert n == 2
        meta, merged = load_snapshot_line(path.read_text().splitlines()[-1])
        assert meta == {"merged": True}
        assert merged.counter_value("c_total") == 6

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(str(tmp_path / "x"), [], fmt="csv")

    def test_stream_writer_bytes_match_batch(self, tmp_path):
        """Incremental writes produce the exact bytes of write_jsonl."""
        snap = sample_snapshot()
        entries = [({"run": 0}, snap), ({"run": 1}, snap.merge(snap))]
        batch = tmp_path / "batch.jsonl"
        streamed = tmp_path / "streamed.jsonl"
        write_jsonl(str(batch), entries)
        with SnapshotStreamWriter(str(streamed)) as writer:
            for meta, entry in entries:
                writer.write(meta, entry)
        assert writer.lines == 2
        assert streamed.read_bytes() == batch.read_bytes()

    def test_read_jsonl_is_lazy_and_round_trips(self, tmp_path):
        snap = sample_snapshot()
        path = tmp_path / "m.jsonl"
        write_jsonl(str(path), [({"run": i}, snap) for i in range(3)])
        stream = read_jsonl(str(path))
        first_meta, first_snap = next(stream)
        assert first_meta == {"run": 0}
        assert first_snap == snap
        assert [meta["run"] for meta, _ in stream] == [1, 2]


class TestPrometheus:
    def test_exposition_shape(self):
        text = to_prometheus(sample_snapshot())
        lines = text.splitlines()
        assert "# TYPE c_total counter" in lines
        assert 'c_total{tier="device"} 3' in lines
        assert "# TYPE g gauge" in lines
        assert "g 7" in lines
        # Cumulative buckets: 1 at le=1.0, 2 at le=10.0, 3 at +Inf.
        assert 'h_seconds_bucket{le="1.0"} 1' in lines
        assert 'h_seconds_bucket{le="10.0"} 2' in lines
        assert 'h_seconds_bucket{le="+Inf"} 3' in lines
        assert "h_seconds_count 3" in lines
        # No _sum series: the layer keeps no float sum by design.
        assert not any("h_seconds_sum" in line for line in lines)

    def test_prom_file_via_write_metrics(self, tmp_path):
        path = tmp_path / "m.prom"
        write_metrics(str(path), [({}, sample_snapshot())], fmt="prom")
        assert path.read_text().startswith("# TYPE")


class TestEventTracer:
    def run_sim(self, tracer, n=10):
        sim = Simulation(seed=1)
        for i in range(n):
            sim.call_at(float(i), lambda: None, label=f"e{i}")
        tracer.install(sim)
        sim.run_until(float(n))
        return sim

    def test_samples_by_sequence(self):
        tracer = EventTracer(every=3)
        self.run_sim(tracer, n=10)
        assert [s.sequence for s in tracer.spans] == [0, 3, 6, 9]
        assert tracer.sampled == 4
        assert tracer.dropped == 0

    def test_limit_counts_drops(self):
        tracer = EventTracer(every=1, limit=4)
        self.run_sim(tracer, n=10)
        assert len(tracer.spans) == 4
        assert tracer.dropped == 6

    def test_chains_existing_hook(self):
        sim = Simulation(seed=1)
        seen = []
        sim.trace_executed = lambda event: seen.append(event.sequence)
        sim.call_at(1.0, lambda: None)
        tracer = EventTracer(every=1).install(sim)
        sim.run_until(2.0)
        assert seen == [0]  # the pre-existing hook still fires
        assert [s.sequence for s in tracer.spans] == [0]
        tracer.uninstall()
        assert sim.trace_executed is not tracer._on_event

    def test_double_install_rejected(self):
        sim = Simulation(seed=1)
        tracer = EventTracer().install(sim)
        with pytest.raises(RuntimeError, match="already installed"):
            tracer.install(sim)

    def test_trace_is_deterministic_across_runs(self):
        def trace():
            tracer = EventTracer(every=2)
            self.run_sim(tracer, n=8)
            return tracer.as_tuples()

        assert trace() == trace()

    def test_validation(self):
        with pytest.raises(ValueError):
            EventTracer(every=0)
        with pytest.raises(ValueError):
            EventTracer(limit=0)
