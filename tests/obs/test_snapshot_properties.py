"""Property suite for the merge algebra, plus the worker-count
invariance guarantee it exists to provide.

The merge contract (see ``repro.obs.snapshot``) restricts the algebra
to integer counters, agg-tagged gauges, and fixed-edge integer-bucket
histograms precisely so that ``merge`` is commutative and associative.
Hypothesis checks the algebra directly; the MC tests check the payoff:
per-run snapshots are identical at any worker count.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.obs import EMPTY_SNAPSHOT, MetricsRegistry, MetricsSnapshot, merge_all
from repro.runtime import MonteCarloRunner, ScenarioTask

FAST = dict(horizon=units.years(1.0), report_interval=units.days(7.0))

# ----------------------------------------------------------------------
# Snapshot strategy: a fixed schema (aggs and edges bound per name, as
# the registry enforces) with arbitrary integer values and label sets.
# ----------------------------------------------------------------------
GAUGE_AGGS = {"g_sum": "sum", "g_max": "max", "g_min": "min"}
EDGES = (1.0, 5.0)

label_sets = st.sampled_from(
    ((), (("entity", "a"),), (("entity", "b"), ("tier", "device")))
)


def _build(counters, gauges, histograms):
    return MetricsSnapshot(
        counters=tuple(sorted((n, l, v) for (n, l), v in counters.items())),
        gauges=tuple(
            sorted((n, l, GAUGE_AGGS[n], v) for (n, l), v in gauges.items())
        ),
        histograms=tuple(
            sorted(
                (n, l, EDGES, buckets, sum(buckets))
                for (n, l), buckets in histograms.items()
            )
        ),
    )


snapshots = st.builds(
    _build,
    st.dictionaries(
        st.tuples(st.sampled_from(["c1_total", "c2_total"]), label_sets),
        st.integers(min_value=0, max_value=10**9),
        max_size=4,
    ),
    st.dictionaries(
        st.tuples(st.sampled_from(sorted(GAUGE_AGGS)), label_sets),
        st.integers(min_value=-(10**6), max_value=10**6),
        max_size=4,
    ),
    st.dictionaries(
        st.tuples(st.just("h_seconds"), label_sets),
        st.tuples(*[st.integers(min_value=0, max_value=1000)] * (len(EDGES) + 1)),
        max_size=3,
    ),
)


class TestMergeAlgebra:
    @given(a=snapshots, b=snapshots)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(a=snapshots, b=snapshots, c=snapshots)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(a=snapshots)
    def test_empty_is_identity(self, a):
        assert a.merge(EMPTY_SNAPSHOT) == a
        assert EMPTY_SNAPSHOT.merge(a) == a

    @given(a=snapshots, b=snapshots)
    def test_merge_order_cannot_change_bytes(self, a, b):
        canonical = lambda s: json.dumps(  # noqa: E731
            s.to_dict(), sort_keys=True, separators=(",", ":")
        )
        assert canonical(a.merge(b)) == canonical(b.merge(a))

    @given(a=snapshots, b=snapshots, c=snapshots)
    def test_merge_all_matches_pairwise(self, a, b, c):
        assert merge_all([a, b, c]) == a.merge(b).merge(c)

    @given(a=snapshots)
    def test_round_trip_survives_merge(self, a):
        merged = a.merge(a)
        assert MetricsSnapshot.from_dict(merged.to_dict()) == merged


class TestHistogramReorderInvariance:
    @settings(max_examples=50)
    @given(data=st.data())
    def test_observation_order_cannot_change_buckets(self, data):
        values = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                max_size=50,
            )
        )
        shuffled = data.draw(st.permutations(values))

        def observe(seq):
            reg = MetricsRegistry()
            h = reg.histogram("h_seconds", edges=(1.0, 10.0, 50.0))
            for v in seq:
                h.observe(v)
            return reg.snapshot()

        assert observe(values) == observe(shuffled)


class TestWorkerCountInvariance:
    """The end-to-end guarantee: snapshots don't depend on worker count."""

    def study(self, workers):
        runner = MonteCarloRunner(
            ScenarioTask("owned-only", **FAST),
            runs=4,
            workers=workers,
            base_seed=2021,
        )
        return runner.run()

    def test_per_run_snapshots_identical_1_vs_4(self):
        serial = self.study(workers=1)
        parallel = self.study(workers=4)
        assert [r.metrics for r in serial.runs] == [
            r.metrics for r in parallel.runs
        ]
        assert serial.merged_metrics() == parallel.merged_metrics()
        assert not serial.merged_metrics().empty

    def test_run_metrics_are_populated(self):
        study = self.study(workers=1)
        for run in study.runs:
            assert run.metrics.counter_value("sim_events_executed_total") > 0
            assert run.events_executed > 0
            assert run.wall_clock_s > 0.0
