"""Failure-injection tests: chaos scenarios across the whole stack.

Each test wounds a running deployment mid-run — now declaratively,
through :mod:`repro.faults` plans rather than bespoke lambdas — and
checks both the service impact and the *accounting*: losses must land in
the right counters, reachability views must agree with delivery reality,
and recovery must restore service.  Several tests additionally run the
:class:`~repro.faults.InvariantAuditor` strict, so a wounding that
corrupts internal bookkeeping fails loudly rather than washing into an
aggregate.
"""

from repro.core import Simulation, units
from repro.energy import Capacitor, CathodicProtectionSource, HarvestingSystem
from repro.faults import (
    FaultPlan,
    FlapFault,
    InvariantAuditor,
    KillFault,
    Selector,
)
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    EdgeDevice,
    HeliumNetwork,
    Network,
    OwnedGateway,
    Position,
    associate_by_coverage,
)
from repro.radio import ieee802154


def build(sim, n_devices=4, n_gateways=2):
    cloud = CloudEndpoint(sim)
    backhaul = CampusBackhaul(sim)
    backhaul.add_dependency(cloud)
    gateways = []
    for index in range(n_gateways):
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(30.0 * index, 0.0),
        )
        gateway.add_dependency(backhaul)
        gateways.append(gateway)
    devices = []
    for index in range(n_devices):
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.hours(6.0),
            position=Position(10.0 + 10.0 * index, 5.0),
        )
        devices.append(device)
    associate_by_coverage(devices, gateways, max_gateways_per_device=2)
    net = Network(
        sim=sim, endpoint=cloud, backhauls=[backhaul], gateways=gateways,
        devices=devices,
    )
    net.deploy_all()
    return net


class TestGatewayFailureInjection:
    def test_all_gateways_down_then_recovered_by_new_deploy(self):
        sim = Simulation(seed=1)
        net = build(sim)
        sim.install_faults(
            FaultPlan(
                name="gateway-wipeout",
                specs=(
                    KillFault(
                        at=units.months(2.0), select=Selector.by_tier("gateway")
                    ),
                ),
            )
        )

        def redeploy():
            gateway = OwnedGateway(
                sim,
                spec=ieee802154.default_spec(),
                path_loss=ieee802154.urban_path_loss(),
                position=Position(20.0, 0.0),
            )
            gateway.add_dependency(net.backhauls[0])
            gateway.deploy()
            for device in net.devices:
                device.add_dependency(gateway)
            net.gateways.append(gateway)

        sim.call_at(units.months(4.0), redeploy)
        sim.run_until(units.years(1.0))
        assert not any(g.alive for g in net.gateways[:2])
        report = net.endpoint.weekly_uptime(0.0, units.years(1.0))
        # Dark for ~2 months of 12: uptime ~10/12.
        assert 0.7 < report.uptime < 0.95
        assert report.longest_gap_weeks >= 7

    def test_loss_counters_during_outage(self):
        sim = Simulation(seed=2)
        net = build(sim)
        auditor = InvariantAuditor(sim, every=200, strict=True).install()
        sim.install_faults(
            FaultPlan(
                specs=(
                    KillFault(
                        at=units.months(1.0), select=Selector.by_tier("gateway")
                    ),
                )
            )
        )
        sim.run_until(units.months(2.0))
        auditor.check_now()
        summary = net.delivery_summary()
        assert summary.no_gateway > 0
        assert summary.attempts == (
            summary.delivered + summary.energy_denied + summary.no_gateway
            + summary.radio_lost + summary.dropped_at_gateway
        )


class TestBackhaulFailureInjection:
    def test_backhaul_death_strands_but_devices_keep_trying(self):
        sim = Simulation(seed=3)
        net = build(sim)
        sim.install_faults(
            FaultPlan(
                specs=(
                    KillFault(
                        at=units.months(3.0),
                        select=Selector.by_name(net.backhauls[0].name),
                        reason="backhaul-cut",
                    ),
                )
            )
        )
        sim.run_until(units.months(6.0))
        assert all(d.alive for d in net.devices)
        assert net.hierarchy.stranded_devices() == net.hierarchy.tier("device")
        summary = net.delivery_summary()
        assert summary.dropped_at_gateway > 0  # heard, not forwarded

    def test_flapping_backhaul_partial_uptime(self):
        sim = Simulation(seed=4)
        net = build(sim)
        # Odd months down, even months up — the old hand-rolled up-toggle
        # loop, now one declarative (and delivery-gating) flap spec.
        plan = FaultPlan(
            name="backhaul-flap",
            specs=(
                FlapFault(
                    at=units.months(1.0),
                    select=Selector.by_tier("backhaul"),
                    down=units.months(1.0),
                    up=units.months(1.0),
                    cycles=6,
                ),
            ),
        )
        assert plan.delivery_gating
        controller = sim.install_faults(plan)
        sim.run_until(units.years(1.0))
        # 6 down edges + 6 restores executed.
        assert controller.fired == 12
        summary = net.delivery_summary()
        assert summary.dropped_at_gateway > 0
        assert summary.delivered > 0


class TestEndpointFailureInjection:
    def test_cloud_outage_counts_at_gateway(self):
        sim = Simulation(seed=5)
        net = build(sim)
        sim.install_faults(
            FaultPlan(
                specs=(
                    KillFault(
                        at=units.months(1.0), select=Selector.by_tier("cloud")
                    ),
                )
            )
        )
        sim.run_until(units.months(3.0))
        assert not net.endpoint.alive
        assert sum(g.drops_endpoint for g in net.gateways) > 0


class TestEnergyStarvationInjection:
    def test_starved_device_recovers_with_harvest(self):
        sim = Simulation(seed=6)
        net = build(sim, n_devices=1)
        device = net.devices[0]
        # Retrofit a harvester below the sleep floor: net-negative energy.
        # (Environment mutation, not a component fault — stays hand-rolled.)
        device.power = HarvestingSystem(
            source=CathodicProtectionSource(nominal_power_w=0.5e-6),
            storage=Capacitor(capacity_j=0.02, stored_j=0.0),
        )
        device._last_energy_step = sim.now
        sim.run_until(units.days(10.0))
        assert device.energy_denied > 0
        # Now the environment improves 100x: the node must come back.
        device.power.source = CathodicProtectionSource(nominal_power_w=2e-4)
        denied_before = device.energy_denied
        delivered_before = device.delivered
        sim.run_until(units.days(30.0))
        assert device.delivered > delivered_before
        late_denials = device.energy_denied - denied_before
        assert late_denials < 20  # a brief refill tail at most


class TestHeliumChaosInjection:
    def test_as_outage_reroutes_through_other_hotspots(self):
        sim = Simulation(seed=7)
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        network = HeliumNetwork(
            sim, cloud, extent_m=2_000.0, initial_hotspots=30
        )
        network.wallet.provision(500_000)
        sim.resources["helium"] = network  # let the auditor cross-check
        auditor = InvariantAuditor(sim, every=200, strict=True).install()
        from repro.radio.lora import LoRaParameters

        lora = LoRaParameters(spreading_factor=10)
        device = EdgeDevice(
            sim,
            technology="lora",
            spec=lora.spec(),
            airtime_s=lora.airtime_s(24),
            report_interval=units.hours(6.0),
            position=Position(1_000.0, 1_000.0),
        )
        device.gateway_directory = network.live_hotspots
        device.deploy()
        sim.run_until(units.months(1.0))
        delivered_before = device.delivered
        # Kill the single biggest AS; other ASes' hotspots still carry.
        # The plan is installed *mid-run* — selectors resolve at fire
        # time, so naming the backhaul that exists right now is exact.
        from repro.analysis import survival_correlation_groups

        groups = survival_correlation_groups(
            [h.asn for h in network.live_hotspots()]
        )
        biggest = max(groups, key=groups.get)
        doomed = network.backhauls[biggest]
        sim.install_faults(
            FaultPlan(
                name="as-outage",
                specs=(
                    KillFault(
                        at=sim.now,
                        select=Selector.by_name(f"as{biggest}"),
                        reason=f"as{biggest}-outage",
                    ),
                ),
            )
        )
        sim.run_until(units.months(3.0))
        auditor.check_now()
        # The struck backhaul is dead (a *new* arrival on the same AS may
        # have re-created the name — that resurrection is the network's
        # churn model working, not the fault failing).
        assert not doomed.alive
        assert device.delivered > delivered_before
