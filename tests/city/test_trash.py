"""Tests for repro.city.trash (the Seoul reproduction)."""

import numpy as np
import pytest

from repro.city import (
    BinFleetConfig,
    compare_policies,
    simulate_scheduled,
    simulate_sensor_driven,
)


class TestBinFleetConfig:
    def test_rates_heterogeneous(self, rng):
        config = BinFleetConfig(n_bins=500, fill_sigma=1.0)
        rates = config.sample_rates(rng)
        assert rates.max() / rates.min() > 10.0  # heavy heterogeneity

    def test_median_calibrated(self, rng):
        config = BinFleetConfig(n_bins=4000, median_fill_days=7.0)
        rates = config.sample_rates(rng)
        median_days = 1.0 / (np.median(rates) * 24.0)
        assert median_days == pytest.approx(7.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BinFleetConfig(n_bins=0)
        with pytest.raises(ValueError):
            BinFleetConfig(median_fill_days=0.0)
        with pytest.raises(ValueError):
            BinFleetConfig(burst_probability=1.5)


class TestScheduledCollection:
    def test_visits_are_deterministic(self, rng):
        config = BinFleetConfig(n_bins=100)
        result = simulate_scheduled(config, rng, horizon_days=30.0, visit_interval_days=2.0)
        assert result.visits == 100 * 15

    def test_overflow_happens(self, rng):
        config = BinFleetConfig(n_bins=200)
        result = simulate_scheduled(config, rng, horizon_days=30.0)
        assert result.overflow_bin_hours > 0.0
        assert result.overflow_events > 0

    def test_tighter_schedule_less_overflow(self):
        config = BinFleetConfig(n_bins=200)
        loose = simulate_scheduled(
            config, np.random.default_rng(3), 30.0, visit_interval_days=4.0
        )
        tight = simulate_scheduled(
            config, np.random.default_rng(3), 30.0, visit_interval_days=1.0
        )
        assert tight.overflow_bin_hours < loose.overflow_bin_hours
        assert tight.visits > loose.visits

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_scheduled(BinFleetConfig(), rng, horizon_days=0.0)


class TestSensorDriven:
    def test_fewer_visits_than_schedule(self):
        config = BinFleetConfig(n_bins=200)
        scheduled = simulate_scheduled(config, np.random.default_rng(5), 30.0)
        smart = simulate_sensor_driven(config, np.random.default_rng(5), 30.0)
        assert smart.visits < scheduled.visits

    def test_compaction_reduces_visits(self):
        config = BinFleetConfig(n_bins=200)
        no_compact = simulate_sensor_driven(
            config, np.random.default_rng(5), 30.0, capacity_multiplier=1.01
        )
        compact = simulate_sensor_driven(
            config, np.random.default_rng(5), 30.0, capacity_multiplier=4.0
        )
        assert compact.visits < no_compact.visits

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_sensor_driven(BinFleetConfig(), rng, dispatch_threshold=1.0)
        with pytest.raises(ValueError):
            simulate_sensor_driven(BinFleetConfig(), rng, response_hours=-1)
        with pytest.raises(ValueError):
            simulate_sensor_driven(BinFleetConfig(), rng, capacity_multiplier=0.5)


class TestSeoulComparison:
    def test_paired_fleets_replay_identical_stream(self):
        # compare_policies derives one named RandomStreams stream per
        # policy from the same seed: repeated calls are bit-identical,
        # and the comparison stays paired.
        config = BinFleetConfig(n_bins=100)
        a = compare_policies(config, seed=11, horizon_days=30.0)
        b = compare_policies(config, seed=11, horizon_days=30.0)
        assert a == b

    def test_distinct_seeds_differ(self):
        config = BinFleetConfig(n_bins=100)
        a = compare_policies(config, seed=11, horizon_days=30.0)
        b = compare_policies(config, seed=12, horizon_days=30.0)
        assert a != b

    def test_shape_matches_paper(self):
        # §2: Seoul reduced overflow 66 % and collection cost 83 %.
        comparison = compare_policies(
            BinFleetConfig(n_bins=300), seed=5, horizon_days=60.0
        )
        assert comparison.overflow_reduction > 0.4
        assert comparison.cost_reduction > 0.6
        assert comparison.shape_holds()

    def test_reduction_metrics_zero_guard(self):
        from repro.city.trash import CollectionResult

        empty = CollectionResult("x", 0, 0.0, 0, 30.0)
        other = CollectionResult("y", 10, 5.0, 1, 30.0)
        assert other.overflow_reduction_vs(empty) == 0.0
        assert other.cost_reduction_vs(empty) == 0.0

    def test_visits_per_bin_day(self):
        from repro.city.trash import CollectionResult

        result = CollectionResult("x", 300, 0.0, 0, 30.0)
        assert result.visits_per_bin_day == 10.0
