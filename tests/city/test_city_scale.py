"""Tests for repro.city.scenario: the city-scale fleet builder.

Construction, config validation, and small-run smoke tests for both
execution engines.  The bit-for-bit engine equivalence proof lives in
``tests/experiment/test_city_equivalence.py``; here we only check the
scenario wires the advertised pieces together.
"""

import pytest

from repro.city.scenario import (
    ENGINES,
    CityScaleConfig,
    CityScenario,
    build_city,
)
from repro.core import units


def small_config(**overrides):
    defaults = dict(
        seed=7,
        device_count=30,
        horizon=units.days(7.0),  # fleet_summary needs >= one uptime week
        batches=4,
        engine="cohort",
    )
    defaults.update(overrides)
    return CityScaleConfig(**defaults)


class TestCityScaleConfig:
    def test_defaults_valid(self):
        config = CityScaleConfig()
        assert config.engine in ENGINES
        assert config.device_count == 1000

    @pytest.mark.parametrize(
        "overrides",
        [
            {"device_count": 0},
            {"horizon": 0.0},
            {"report_interval": 0.0},
            {"initial_fill": 1.5},
            {"device_spacing_m": 0.0},
            {"gateway_spacing_m": -1.0},
            {"batches": 0},
            {"engine": "vectorized"},
        ],
        ids=lambda d: next(iter(d)),
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            CityScaleConfig(**overrides)

    def test_rejects_fleet_larger_than_asset_stock(self):
        config = CityScaleConfig(asset="streetlight", device_count=10**9)
        with pytest.raises(ValueError):
            CityScenario(config)


class TestCityScenarioConstruction:
    def test_rollout_plan_matches_requested_fleet(self):
        city = CityScenario(small_config())
        assert city.plan.fleet_size == 30
        assert city.plan.asset.name == "streetlight"
        assert len(city.device_positions) == 30

    def test_cohort_engine_builds_batches(self):
        city = CityScenario(small_config(batches=4))
        assert len(city.cohorts) == 4
        assert sum(c.count for c in city.cohorts) == 30
        assert not city.devices
        # Batch sizes differ by at most one and follow member order.
        sizes = [c.count for c in city.cohorts]
        assert max(sizes) - min(sizes) <= 1

    def test_per_entity_engine_builds_devices(self):
        city = CityScenario(small_config(engine="per-entity"))
        assert len(city.devices) == 30
        assert not city.cohorts

    def test_more_batches_than_devices_skips_empty(self):
        city = CityScenario(small_config(device_count=3, batches=24))
        assert len(city.cohorts) == 3
        assert sum(c.count for c in city.cohorts) == 3

    def test_gateway_grid_covers_device_extent(self):
        city = CityScenario(small_config())
        # Every device must sit within the planning coverage radius of
        # some gateway, or the layout defeats its own purpose.
        from repro.radio.link import coverage_radius_m

        radius = coverage_radius_m(city.spec, city.path_loss, 0.5)
        for position in city.device_positions:
            nearest = min(
                position.distance_to(g.position) for g in city.gateways
            )
            assert nearest <= radius

    def test_endpoint_runs_aggregate_only(self):
        city = CityScenario(small_config())
        assert city.endpoint.store_deliveries is False


class TestCityScenarioRun:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_small_run_delivers(self, engine):
        city = build_city(small_config(engine=engine))
        summary = city.run()
        assert summary["engine"] == engine
        assert summary["attempts"] > 0
        assert summary["delivered"] > 0
        # A device counts "delivered" only when the endpoint recorded
        # the packet, so the two ends of the chain must agree.
        assert summary["endpoint_delivered"] == summary["delivered"]
        accounted = (
            summary["delivered"]
            + summary["energy_denied"]
            + summary["no_gateway"]
            + summary["radio_lost"]
        )
        assert accounted <= summary["attempts"]
        assert 0 <= summary["devices_alive_at_end"] <= 30

    def test_run_under_strict_auditor(self):
        from repro.faults.auditor import InvariantAuditor

        city = build_city(small_config())
        auditor = InvariantAuditor(city.sim, every=5, strict=True).install()
        city.run()
        assert auditor.audits_run > 0
