"""Tests for repro.city.deployment."""

import numpy as np
import pytest

from repro.city import RolloutPlan, city_rollout, los_angeles, san_diego_pilot
from repro.city.assets import AssetClass
from repro.core import units
from repro.econ import CostParameters


def asset(count=24_000, life=25.0):
    return AssetClass("intersection", count, life)


class TestRolloutPlan:
    def test_fleet_and_batch_sizes(self):
        plan = RolloutPlan(asset=asset(), project_cycle_years=25.0, batches=24)
        assert plan.fleet_size == 24_000
        assert plan.batch_size == 1_000

    def test_instrumented_fraction(self):
        plan = RolloutPlan(
            asset=asset(), project_cycle_years=25.0, instrumented_fraction=0.1
        )
        assert plan.fleet_size == 2_400

    def test_timeline_sustains_coverage(self, rng):
        plan = RolloutPlan(asset=asset(count=2_400), project_cycle_years=20.0, batches=12)
        sampler = lambda n: rng.weibull(4.0, n) * units.years(30.0)
        timeline = plan.timeline(sampler, horizon=units.years(80.0))
        life = timeline.system_lifetime(units.years(80.0), step=units.years(1.0))
        assert life == units.years(80.0)

    def test_annual_touch_rate(self):
        plan = RolloutPlan(asset=asset(count=25_000), project_cycle_years=25.0)
        assert plan.annual_touch_rate() == pytest.approx(1_000.0)

    def test_piggyback_cheaper_than_truck_rolls(self):
        # The §1 economy: riding project batches avoids dedicated truck
        # rolls, so it must beat on-failure maintenance for the same fleet.
        plan = RolloutPlan(asset=asset(count=25_000), project_cycle_years=25.0)
        costs = CostParameters()
        piggyback = plan.annual_cost_usd(costs)
        standalone = plan.standalone_annual_cost_usd(device_mtbf_years=25.0, costs=costs)
        assert piggyback < standalone

    def test_validation(self):
        with pytest.raises(ValueError):
            RolloutPlan(asset=asset(), project_cycle_years=0.0)
        with pytest.raises(ValueError):
            RolloutPlan(asset=asset(), project_cycle_years=1.0, batches=0)
        with pytest.raises(ValueError):
            RolloutPlan(asset=asset(), project_cycle_years=1.0, instrumented_fraction=0.0)


class TestCityRollout:
    def test_one_plan_per_sensor_bearing_class(self):
        plans = city_rollout(los_angeles())
        assert len(plans) == 3

    def test_skips_sensorless_assets(self):
        plans = city_rollout(san_diego_pilot())
        assert len(plans) == 1  # the LEDs host no sensors in our model

    def test_cycles_bounded_by_asset_life(self):
        plans = city_rollout(los_angeles())
        for plan in plans:
            assert plan.project_cycle_years <= plan.asset.service_life_years

    def test_total_fleet_is_city_sensor_count(self):
        plans = city_rollout(los_angeles(), instrumented_fraction=1.0)
        assert sum(p.fleet_size for p in plans) == los_angeles().total_sensors()
