"""Tests for repro.city.assets."""

import pytest

from repro.city import (
    LA_TOTAL_ASSETS,
    AssetClass,
    CityInventory,
    los_angeles,
    san_diego_pilot,
    scaled_city,
)


class TestLosAngeles:
    def test_paper_counts(self):
        la = los_angeles()
        assert la.asset("utility-pole").count == 320_000
        assert la.asset("intersection").count == 61_315
        assert la.asset("streetlight").count == 210_000
        assert la.total_assets() == LA_TOTAL_ASSETS == 591_315

    def test_replacement_hours_is_paper_figure(self):
        # §1: "nearly 200,000 person-hours of labor alone."
        hours = los_angeles().replacement_person_hours()
        assert hours == pytest.approx(197_105.0)
        assert 190_000 < hours < 200_000

    def test_paper_service_lives(self):
        la = los_angeles()
        assert la.asset("intersection").service_life_years == 25.0  # pavement
        assert la.asset("streetlight").service_life_years == 30.0

    def test_unknown_asset(self):
        with pytest.raises(KeyError):
            los_angeles().asset("gondola")


class TestSanDiego:
    def test_pilot_scale(self):
        sd = san_diego_pilot()
        # §2: 8,000 smart LEDs, 3,300 sensors.
        assert sd.asset("streetlight").count == 8_000
        assert sd.total_sensors() == 3_300


class TestScaledCity:
    def test_proportions_preserved(self):
        half = scaled_city("Halfville", 0.5)
        assert half.asset("utility-pole").count == 160_000
        assert half.total_assets() == pytest.approx(LA_TOTAL_ASSETS / 2, rel=0.01)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_city("x", 0.0)


class TestAssetClass:
    def test_sensor_count(self):
        asset = AssetClass("bridge", 100, 50.0, sensors_per_asset=4)
        assert asset.sensor_count == 400

    def test_service_life_seconds(self):
        from repro.core import units

        asset = AssetClass("bridge", 1, 50.0)
        assert asset.service_life == units.years(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AssetClass("x", -1, 10.0)
        with pytest.raises(ValueError):
            AssetClass("x", 1, 0.0)
        with pytest.raises(ValueError):
            AssetClass("x", 1, 1.0, sensors_per_asset=-1)
        with pytest.raises(ValueError):
            CityInventory("x", []).replacement_person_hours(minutes_per_device=0.0)
