"""Tests for repro.city.airquality (§2 spatial-granularity claim)."""

import numpy as np
import pytest

from repro.city import (
    PollutionFieldConfig,
    density_study,
    evaluate_density,
    nearest_sensor_reconstruction,
    synthesize_field,
)


def small_config(**kw):
    defaults = dict(extent_m=3000.0, resolution_m=100.0)
    defaults.update(kw)
    return PollutionFieldConfig(**defaults)


class TestSynthesis:
    def test_shape(self, rng):
        config = small_config()
        surface = synthesize_field(config, rng)
        assert surface.shape == (30, 30)

    def test_positive_levels(self, rng):
        surface = synthesize_field(small_config(), rng)
        assert surface.min() > 0.0

    def test_spatial_structure_present(self, rng):
        # Adjacent cells correlate far more than distant ones.
        surface = synthesize_field(small_config(), rng)
        adjacent = np.corrcoef(surface[:-1, :].ravel(), surface[1:, :].ravel())[0, 1]
        shifted = np.corrcoef(surface[:15, :].ravel(), surface[15:, :].ravel())[0, 1]
        assert adjacent > 0.8
        assert adjacent > abs(shifted)

    def test_roads_raise_levels(self, rng):
        config_roads = small_config(n_roads=8, road_peak=30.0)
        config_clean = small_config(n_roads=0)
        with_roads = synthesize_field(config_roads, np.random.default_rng(1)).mean()
        without = synthesize_field(config_clean, np.random.default_rng(1)).mean()
        assert with_roads > without

    def test_validation(self):
        with pytest.raises(ValueError):
            PollutionFieldConfig(extent_m=0.0)
        with pytest.raises(ValueError):
            PollutionFieldConfig(extent_m=100.0, resolution_m=200.0)
        with pytest.raises(ValueError):
            PollutionFieldConfig(correlation_length_m=0.0)


class TestReconstruction:
    def test_sensor_cells_exact(self, rng):
        surface = synthesize_field(small_config(), rng)
        estimate = nearest_sensor_reconstruction(surface, [(5, 5)])
        assert estimate[5, 5] == surface[5, 5]

    def test_single_sensor_constant_field(self, rng):
        surface = synthesize_field(small_config(), rng)
        estimate = nearest_sensor_reconstruction(surface, [(5, 5)])
        assert np.unique(estimate).size == 1

    def test_empty_sensors_rejected(self, rng):
        surface = synthesize_field(small_config(), rng)
        with pytest.raises(ValueError):
            nearest_sensor_reconstruction(surface, [])


class TestDensityStudy:
    def test_error_falls_with_density(self, rng):
        config = small_config(extent_m=4000.0)
        results = density_study(config, [200.0, 500.0, 1500.0], rng)
        rmses = [r.rmse for r in results]
        assert rmses == sorted(rmses)
        assert results[0].n_sensors > results[-1].n_sensors

    def test_block_granularity_resolves_field(self, rng):
        # §2's claim quantified: block-scale spacing (<= correlation
        # length) reconstructs the field well; km spacing does not.
        config = small_config(extent_m=6000.0, correlation_length_m=300.0)
        block = evaluate_density(config, 200.0, np.random.default_rng(4))
        sparse = evaluate_density(config, 2000.0, np.random.default_rng(4))
        assert block.normalized_rmse < 0.5
        assert sparse.normalized_rmse > 1.5 * block.normalized_rmse

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            evaluate_density(small_config(), 0.0, rng)
