"""Tests for repro.analysis.asn."""

import numpy as np
import pytest

from repro.analysis import (
    NAMED_ISPS,
    PAPER_GATEWAY_COUNT,
    PAPER_TOP10_SHARE,
    PAPER_UNIQUE_ASES,
    calibrate_exponent,
    concentration,
    survival_correlation_groups,
    synthesize_assignments,
    zipf_mandelbrot_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_mandelbrot_weights(200, 1.0, 2.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_mandelbrot_weights(50, 1.2, 1.0)
        assert (np.diff(weights) < 0).all()

    def test_higher_exponent_more_concentrated(self):
        flat = zipf_mandelbrot_weights(100, 0.5, 2.0)[:10].sum()
        steep = zipf_mandelbrot_weights(100, 2.0, 2.0)[:10].sum()
        assert steep > flat

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_mandelbrot_weights(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            zipf_mandelbrot_weights(10, 0.0, 1.0)
        with pytest.raises(ValueError):
            zipf_mandelbrot_weights(10, 1.0, -1.0)


class TestCalibration:
    def test_exponent_hits_target(self):
        exponent = calibrate_exponent(n_ases=200, target_top10=0.5)
        top10 = zipf_mandelbrot_weights(200, exponent, 2.0)[:10].sum()
        assert top10 == pytest.approx(0.5, abs=0.005)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            calibrate_exponent(target_top10=1.0)


class TestSynthesis:
    def test_reproduces_paper_measurement(self, rng):
        # §4.3: 12,400 gateways, top-10 ASes ~50 %, ~200 unique ASes.
        assignments = synthesize_assignments(rng=rng)
        report = concentration(assignments)
        assert report.total_nodes == PAPER_GATEWAY_COUNT
        assert report.top10_share == pytest.approx(PAPER_TOP10_SHARE, abs=0.05)
        assert abs(report.unique_ases - PAPER_UNIQUE_ASES) <= 30
        assert report.matches_paper()

    def test_named_isps_lead(self, rng):
        assignments = synthesize_assignments(rng=rng)
        report = concentration(assignments)
        # Comcast/Spectrum/Verizon are the top ranks: roughly half of
        # the top-10 mass ("roughly half" of gateways per the paper).
        assert 0.15 < report.named_isp_share < 0.55

    def test_rng_required(self):
        with pytest.raises(ValueError):
            synthesize_assignments(rng=None)

    def test_deterministic_for_seed(self):
        a = synthesize_assignments(n_nodes=500, rng=np.random.default_rng(1))
        b = synthesize_assignments(n_nodes=500, rng=np.random.default_rng(1))
        assert a == b


class TestConcentration:
    def test_single_as(self):
        report = concentration([100] * 50)
        assert report.unique_ases == 1
        assert report.top1_share == 1.0
        assert report.hhi == 1.0

    def test_uniform_ases(self):
        report = concentration(list(range(100)))
        assert report.unique_ases == 100
        assert report.top10_share == pytest.approx(0.1)
        assert report.hhi == pytest.approx(0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concentration([])

    def test_named_isp_share(self):
        asns = [NAMED_ISPS["Comcast"]] * 5 + [64512] * 5
        assert concentration(asns).named_isp_share == pytest.approx(0.5)


class TestCorrelationGroups:
    def test_counts(self):
        groups = survival_correlation_groups([1, 1, 2, 3, 3, 3])
        assert groups == {1: 2, 2: 1, 3: 3}

    def test_largest_group_is_systemic_risk(self, rng):
        assignments = synthesize_assignments(rng=rng)
        groups = survival_correlation_groups(assignments)
        largest = max(groups.values())
        # One AS outage takes out >5 % of the network at paper shape.
        assert largest / len(assignments) > 0.05
