"""Tests for repro.analysis.uptime and repro.analysis.metrics."""

import pytest

from repro.analysis import (
    FactorComparison,
    MonteCarloUptime,
    Summary,
    entity_availability,
    first_crossing,
    interval_coverage,
    longest_gap,
    summarize_samples,
)
from repro.core import Entity, units


class TestIntervalCoverage:
    def test_basic(self):
        assert interval_coverage([0.5, 1.5], 0.0, 4.0, interval=1.0) == 0.5

    def test_full(self):
        arrivals = [i + 0.5 for i in range(10)]
        assert interval_coverage(arrivals, 0.0, 10.0, interval=1.0) == 1.0

    def test_empty(self):
        assert interval_coverage([], 0.0, 10.0, interval=1.0) == 0.0

    def test_out_of_window_ignored(self):
        assert interval_coverage([-1.0, 100.0], 0.0, 10.0, interval=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_coverage([], 5.0, 5.0)
        with pytest.raises(ValueError):
            interval_coverage([], 0.0, 1.0, interval=0.0)
        with pytest.raises(ValueError):
            interval_coverage([], 0.0, units.DAY, interval=units.WEEK)


class TestLongestGap:
    def test_gaps_include_edges(self):
        assert longest_gap([5.0], 0.0, 10.0) == 5.0

    def test_interior_gap(self):
        assert longest_gap([1.0, 9.0], 0.0, 10.0) == 8.0

    def test_no_arrivals(self):
        assert longest_gap([], 0.0, 10.0) == 10.0


class TestEntityAvailability:
    def test_alive_whole_window(self, sim):
        class Node(Entity):
            TIER = "device"

        node = Node(sim)
        node.deploy()
        sim.run_until(100.0)
        assert entity_availability(sim, node.name, 0.0, 100.0) == 1.0

    def test_fails_midway(self, sim):
        class Node(Entity):
            TIER = "device"

        node = Node(sim)
        node.deploy()
        sim.call_at(40.0, node.fail)
        sim.run_until(100.0)
        assert entity_availability(sim, node.name, 0.0, 100.0) == pytest.approx(0.4)


class TestMonteCarloUptime:
    def test_statistics(self):
        mc = MonteCarloUptime.from_samples([0.9, 1.0, 0.8, 0.95, 0.85])
        assert mc.runs == 5
        assert mc.worst == 0.8
        assert 0.8 <= mc.p5 <= mc.p50 <= mc.p95 <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloUptime.from_samples([])


class TestSummary:
    def test_mean_and_ci(self):
        s = summarize_samples([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.n == 3
        lo, hi = s.ci95
        assert lo < 2.0 < hi

    def test_single_sample_no_ci(self):
        s = summarize_samples([5.0])
        assert s.ci95_half_width == 0.0

    def test_format(self):
        assert "±" in summarize_samples([1.0, 2.0]).format()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])


class TestFactorComparison:
    def test_winner_higher_is_better(self):
        c = FactorComparison("a", "b", 10.0, 5.0)
        assert c.winner == "a"
        assert c.factor == 2.0

    def test_winner_lower_is_better(self):
        c = FactorComparison("a", "b", 10.0, 5.0, higher_is_better=False)
        assert c.winner == "b"

    def test_tie(self):
        assert FactorComparison("a", "b", 1.0, 1.0).winner == "tie"

    def test_zero_handling(self):
        assert FactorComparison("a", "b", 1.0, 0.0).factor == float("inf")

    def test_format(self):
        assert "by" in FactorComparison("a", "b", 2.0, 1.0).format()


class TestFirstCrossing:
    def test_interpolated_crossing(self):
        xs = [0.0, 1.0, 2.0]
        a = [2.0, 1.0, 0.0]
        b = [0.5, 0.5, 0.5]
        x = first_crossing(xs, a, b)
        assert x == pytest.approx(1.5)

    def test_no_crossing(self):
        assert first_crossing([0, 1], [2, 2], [1, 1]) is None

    def test_starts_below(self):
        assert first_crossing([0, 1], [0, 0], [1, 1]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            first_crossing([0], [1], [2])
