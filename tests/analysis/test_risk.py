"""Tests for repro.analysis.risk."""

import pytest

from repro.analysis import (
    correlated_failure,
    dependency_graph,
    redundancy_histogram,
    single_points_of_failure,
    worst_domains,
)
from repro.core import Entity, Hierarchy, Simulation


class Dev(Entity):
    TIER = "device"


class Gw(Entity):
    TIER = "gateway"


class Bh(Entity):
    TIER = "backhaul"


class Cl(Entity):
    TIER = "cloud"


def build(sim, redundancy=1):
    cloud = Cl(sim)
    backhaul = Bh(sim)
    backhaul.add_dependency(cloud)
    gateways = [Gw(sim) for _ in range(2)]
    for index, gateway in enumerate(gateways):
        gateway.add_dependency(backhaul)
        gateway.tags["asn"] = str(7922 if index == 0 else 701)
    devices = [Dev(sim) for _ in range(6)]
    for index, device in enumerate(devices):
        device.add_dependency(gateways[index % 2])
        if redundancy == 2:
            device.add_dependency(gateways[(index + 1) % 2])
    hierarchy = Hierarchy()
    hierarchy.extend([cloud, backhaul, *gateways, *devices])
    for entity in hierarchy.entities:
        entity.deploy()
    return hierarchy, cloud, backhaul, gateways, devices


class TestDependencyGraph:
    def test_nodes_and_edges(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        graph = dependency_graph(hierarchy)
        assert graph.number_of_nodes() == 10
        assert graph.has_edge(devices[0].name, gateways[0].name)
        assert graph.has_edge(backhaul.name, cloud.name)
        assert graph.nodes[devices[0].name]["tier"] == "device"


class TestSinglePointsOfFailure:
    def test_backhaul_is_biggest_spof(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        spofs = single_points_of_failure(hierarchy)
        assert spofs[0].name in (backhaul.name, cloud.name)
        assert spofs[0].stranded_devices == 6

    def test_redundant_gateways_not_spofs(self, sim):
        hierarchy, *_ = build(sim, redundancy=2)
        spofs = single_points_of_failure(hierarchy)
        gateway_spofs = [s for s in spofs if s.tier == "gateway"]
        assert gateway_spofs == []

    def test_dead_entities_skipped(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        gateways[0].fail()
        spofs = single_points_of_failure(hierarchy)
        assert all(s.name != gateways[0].name for s in spofs)


class TestRedundancyHistogram:
    def test_single_homed(self, sim):
        hierarchy, *_ = build(sim, redundancy=1)
        assert redundancy_histogram(hierarchy) == {1: 6}

    def test_dual_homed(self, sim):
        hierarchy, *_ = build(sim, redundancy=2)
        assert redundancy_histogram(hierarchy) == {2: 6}

    def test_failure_shifts_buckets(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim, redundancy=2)
        gateways[0].fail()
        assert redundancy_histogram(hierarchy) == {1: 6}


class TestCorrelatedFailure:
    def test_as_outage_counts_losses(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        result = correlated_failure(hierarchy, "asn", "7922")
        assert result.members == 1
        assert result.devices_lost == 3
        assert result.loss_fraction == pytest.approx(0.5)

    def test_restores_state(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        correlated_failure(hierarchy, "asn", "7922")
        assert gateways[0].alive

    def test_unknown_domain_no_loss(self, sim):
        hierarchy, *_ = build(sim)
        result = correlated_failure(hierarchy, "asn", "99999")
        assert result.members == 0
        assert result.devices_lost == 0

    def test_worst_domains_ranked(self, sim):
        hierarchy, cloud, backhaul, gateways, devices = build(sim)
        # Skew: give gateway 0 an extra device so asn 7922 dominates.
        extra = Dev(sim)
        extra.add_dependency(gateways[0])
        extra.deploy()
        hierarchy.add(extra)
        ranked = worst_domains(hierarchy, "asn")
        assert ranked[0].domain == "asn=7922"
        assert ranked[0].devices_lost >= ranked[-1].devices_lost
