"""Tests for repro.analysis.report."""

from repro.analysis import (
    ExperimentDiary,
    PaperComparison,
    comparison_table,
)
from repro.core import units
from repro.reliability import MaintenanceLedger


class TestExperimentDiary:
    def test_note_and_render_chronological(self):
        diary = ExperimentDiary()
        diary.note(units.years(5.0), "maintenance", "swapped gateway")
        diary.note(units.years(1.0), "cost", "domain renewal $20")
        text = diary.render()
        assert text.index("domain renewal") < text.index("swapped gateway")
        assert "[yr   1.00]" in text
        assert "[yr   5.00]" in text

    def test_empty_diary_notes_unattended(self):
        assert "unattended" in ExperimentDiary().render()

    def test_from_maintenance(self):
        ledger = MaintenanceLedger()
        ledger.log(units.years(2.0), "gateway", "gw-1", "replace", 2.5, 900.0)
        diary = ExperimentDiary()
        diary.from_maintenance(ledger)
        assert len(diary.entries) == 1
        assert "replace gw-1" in diary.entries[0].text

    def test_from_sim_log(self, sim):
        sim.call_at(10.0, lambda: sim.record("sunset", "cell-1", generation="2G"))
        sim.call_at(20.0, lambda: sim.record("ignored-channel", "x"))
        sim.run_until(30.0)
        diary = ExperimentDiary()
        diary.from_sim_log(sim)
        assert len(diary.entries) == 1
        assert "sunset" in diary.entries[0].text


class TestPaperComparison:
    def test_row_format(self):
        row = PaperComparison(
            experiment="E1",
            claim="LA replacement labor",
            paper_value="~200,000 h",
            measured_value="197,105 h",
            holds=True,
        )
        text = row.format()
        assert "E1" in text
        assert "HOLDS" in text

    def test_differs_status(self):
        row = PaperComparison("E9", "c", "p", "m", holds=False)
        assert "DIFFERS" in row.format()

    def test_table(self):
        rows = [
            PaperComparison("E1", "a", "1", "1", True),
            PaperComparison("E2", "b", "2", "3", False),
        ]
        table = comparison_table(rows)
        assert table.count("\n") == 3  # header + separator + 2 rows
        assert "| Exp |" in table
