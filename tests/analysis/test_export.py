"""Tests for repro.analysis.export."""

import csv

import pytest

from repro.analysis.export import (
    coverage_series,
    export_all_figures,
    survival_series,
    sweep_series,
    tco_series_rows,
    write_csv,
)
from repro.core import en_masse_fleet, units
from repro.econ import tco_series
from repro.reliability import kaplan_meier


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ("a", "b"), [(1, 2), (3, 4)])
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "x.csv", ("a",), [(1,)])
        assert path.exists()

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ("a", "b"), [(1,)])

    def test_empty_header_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", (), [])


class TestSeriesBuilders:
    def test_coverage_series(self):
        import numpy as np

        timeline = en_masse_fleet(10, lambda n: np.full(n, units.years(5.0)))
        header, rows = coverage_series(timeline, units.years(10.0))
        assert header == ("years", "coverage")
        assert rows[0] == (0.0, 1.0)
        assert rows[-1][1] == 0.0  # all dead by year 10

    def test_survival_series_starts_at_one(self):
        curve = kaplan_meier([units.years(1.0), units.years(2.0)])
        header, rows = survival_series(curve)
        assert rows[0] == (0.0, 1.0)
        assert rows[-1][1] == 0.0

    def test_tco_rows(self):
        header, rows = tco_series_rows(tco_series(10, horizon_years=10.0))
        assert header == ("years", "fiber_usd", "cellular_usd")
        assert len(rows) == 11

    def test_sweep_series_validation(self):
        with pytest.raises(ValueError):
            sweep_series([1.0], [1.0, 2.0], "x", "y")


class TestExportAll:
    def test_exports_every_figure(self, tmp_path):
        written = export_all_figures(tmp_path, seed=1)
        names = {p.name for p in written}
        assert names == {
            "e05_tco.csv",
            "e10_survival_battery.csv",
            "e10_survival_harvesting.csv",
            "e11_coverage_pipelined.csv",
            "e11_coverage_en_masse.csv",
            "e14_air_quality.csv",
            "e15_channel.csv",
        }
        for path in written:
            rows = read_csv(path)
            assert len(rows) > 2  # header plus data
