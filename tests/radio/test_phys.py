"""Tests for the 802.15.4 and LoRa PHY models."""

import pytest

from repro.core import units
from repro.radio import EU868, US915, LoRaParameters, ieee802154
from repro.radio.lora import SENSITIVITY_DBM, suburban_path_loss


class TestIeee802154:
    def test_airtime_24_byte_payload(self):
        # 6 sync/header + 11 MAC + 24 payload + 2 FCS = 43 B at 250 kbps.
        assert ieee802154.airtime_s(24) == pytest.approx(43 * 8 / 250e3)

    def test_airtime_monotone_in_payload(self):
        assert ieee802154.airtime_s(50) > ieee802154.airtime_s(10)

    def test_max_psdu_enforced(self):
        max_payload = ieee802154.MAX_PSDU_BYTES - ieee802154.MAC_OVERHEAD_BYTES - 2
        ieee802154.frame_bytes(max_payload)  # fits
        with pytest.raises(ValueError):
            ieee802154.frame_bytes(max_payload + 1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            ieee802154.airtime_s(-1)

    def test_default_spec(self):
        spec = ieee802154.default_spec()
        assert spec.frequency_hz == pytest.approx(2.45e9)
        assert spec.sensitivity_dbm == -100.0
        assert spec.bitrate_bps == 250_000.0

    def test_embedded_path_loss_penalty(self):
        assert ieee802154.urban_path_loss(embedded=True).penetration_db == 12.0
        assert ieee802154.urban_path_loss(embedded=False).penetration_db == 0.0

    def test_csma_mean_backoff(self):
        csma = ieee802154.CsmaParameters()
        assert csma.mean_backoff_s() == pytest.approx((2**3 - 1) / 2 * 320e-6)


class TestLoRaAirtime:
    def test_sf7_fast_sf12_slow(self):
        fast = LoRaParameters(spreading_factor=7).airtime_s(24)
        slow = LoRaParameters(spreading_factor=12).airtime_s(24)
        assert slow > 10.0 * fast

    def test_known_airtime_sf10(self):
        # SX1276 calculator: SF10/125k/CR4:5, 24B explicit header,
        # 8-symbol preamble -> ~370 ms.
        airtime = LoRaParameters(spreading_factor=10).airtime_s(24)
        assert airtime == pytest.approx(0.371, abs=0.02)

    def test_symbol_time(self):
        p = LoRaParameters(spreading_factor=10, bandwidth_hz=125e3)
        assert p.symbol_time_s == pytest.approx(1024 / 125e3)

    def test_airtime_monotone_in_payload(self):
        p = LoRaParameters(spreading_factor=9)
        assert p.airtime_s(50) > p.airtime_s(10)

    def test_low_datarate_optimize_lengthens(self):
        base = LoRaParameters(spreading_factor=12)
        ldo = LoRaParameters(spreading_factor=12, low_datarate_optimize=True)
        assert ldo.airtime_s(24) >= base.airtime_s(24)

    def test_sensitivity_table_monotone(self):
        values = [SENSITIVITY_DBM[sf] for sf in range(7, 13)]
        assert values == sorted(values, reverse=True)

    def test_spec_inherits_sensitivity(self):
        p = LoRaParameters(spreading_factor=12)
        assert p.spec().sensitivity_dbm == -137.0

    def test_bitrate_falls_with_sf(self):
        assert (
            LoRaParameters(spreading_factor=7).bitrate_bps()
            > LoRaParameters(spreading_factor=12).bitrate_bps()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LoRaParameters(spreading_factor=6)
        with pytest.raises(ValueError):
            LoRaParameters(coding_rate=5)
        with pytest.raises(ValueError):
            LoRaParameters().airtime_s(-1)


class TestRegionalLimits:
    def test_us915_dwell_time(self):
        airtime = LoRaParameters(spreading_factor=10).airtime_s(24)
        assert US915.permits(airtime, units.HOUR)
        long_airtime = LoRaParameters(spreading_factor=12).airtime_s(24)
        assert long_airtime > 0.4
        assert not US915.permits(long_airtime, units.HOUR)

    def test_eu868_duty_cycle(self):
        airtime = 0.4
        assert EU868.min_interval_s(airtime) == pytest.approx(40.0)
        assert EU868.permits(airtime, 41.0)
        assert not EU868.permits(airtime, 39.0)

    def test_hourly_reporting_is_legal_everywhere(self):
        # The paper's schedule: one 24-byte packet per hour at SF10.
        airtime = LoRaParameters(spreading_factor=10).airtime_s(24)
        assert US915.permits(airtime, units.HOUR)
        assert EU868.permits(airtime, units.HOUR)

    def test_suburban_path_loss_embedding(self):
        assert suburban_path_loss(embedded=True).penetration_db == 8.0
