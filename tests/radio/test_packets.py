"""Tests for repro.radio.packets."""

import pytest

from repro.radio import CREDIT_UNIT_BYTES, DeliveryRecord, Packet, Reading


class TestPacket:
    def test_credit_units_paper_boundary(self):
        # One credit per started 24-byte unit (§4.4).
        assert Packet("d", 0.0, payload_bytes=24).credit_units == 1
        assert Packet("d", 0.0, payload_bytes=25).credit_units == 2
        assert Packet("d", 0.0, payload_bytes=48).credit_units == 2
        assert Packet("d", 0.0, payload_bytes=49).credit_units == 3

    def test_zero_byte_heartbeat_costs_one(self):
        assert Packet("d", 0.0, payload_bytes=0).credit_units == 1

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet("d", 0.0, payload_bytes=-1)

    def test_sequence_numbers_increase(self):
        a = Packet("d", 0.0, 24)
        b = Packet("d", 0.0, 24)
        assert b.sequence > a.sequence

    def test_reading_attached(self):
        reading = Reading(kind="strain", value=1.5, unit="ue")
        packet = Packet("d", 0.0, 24, reading=reading)
        assert packet.reading.kind == "strain"

    def test_credit_unit_constant(self):
        assert CREDIT_UNIT_BYTES == 24


class TestDeliveryRecord:
    def test_latency(self):
        packet = Packet("d", created_at=10.0, payload_bytes=24)
        record = DeliveryRecord(packet, received_at=12.5, via_gateway="g", via_backhaul="b")
        assert record.latency_s == 2.5
