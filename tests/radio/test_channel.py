"""Tests for repro.radio.channel (shared-channel contention)."""

import math

import pytest

from repro.core import units
from repro.radio import (
    ChannelLoad,
    capacity_table,
    density_sweep,
    ieee802154,
    max_devices_for_reliability,
)
from repro.radio.lora import LoRaParameters


class TestChannelLoad:
    def test_offered_erlangs(self):
        load = ChannelLoad(devices=100, airtime_s=0.01, interval_s=10.0)
        assert load.offered_erlangs == pytest.approx(0.1)

    def test_single_device_near_perfect(self):
        load = ChannelLoad(1, 0.0014, units.HOUR)
        assert load.delivery_probability() > 0.999999

    def test_delivery_falls_with_density(self):
        airtime, interval = 0.4, units.HOUR
        probs = [
            ChannelLoad(n, airtime, interval).delivery_probability()
            for n in (10, 1000, 10_000)
        ]
        assert probs[0] > probs[1] > probs[2]

    def test_aloha_formula(self):
        load = ChannelLoad(devices=3600, airtime_s=0.5, interval_s=3600.0)
        # G = 0.5 -> exp(-1)
        assert load.delivery_probability() == pytest.approx(math.exp(-1.0))

    def test_throughput_peak_at_half_erlang(self):
        airtime, interval = 1.0, 3600.0
        # G = n/3600; peak S at G=0.5 -> n=1800.
        peak = ChannelLoad(1800, airtime, interval).throughput_erlangs()
        below = ChannelLoad(900, airtime, interval).throughput_erlangs()
        above = ChannelLoad(3600, airtime, interval).throughput_erlangs()
        assert peak > below
        assert peak > above
        assert peak == pytest.approx(0.5 * math.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelLoad(-1, 1.0, 1.0)
        with pytest.raises(ValueError):
            ChannelLoad(1, 0.0, 1.0)
        with pytest.raises(ValueError):
            ChannelLoad(1, 1.0, 0.0)


class TestCapacity:
    def test_shorter_airtime_more_devices(self):
        fast = max_devices_for_reliability(0.0014, units.HOUR)
        slow = max_devices_for_reliability(1.3, units.HOUR)
        assert fast > 100 * slow

    def test_figure1_thousands_per_gateway_is_feasible(self):
        # Figure 1: "gateways may support thousands of devices" — true
        # for 802.15.4 at hourly reporting with huge margin.
        capacity = max_devices_for_reliability(
            ieee802154.airtime_s(24), units.HOUR, min_delivery=0.9
        )
        assert capacity > 10_000

    def test_sf12_capacity_is_orders_lower(self):
        sf12 = LoRaParameters(spreading_factor=12).airtime_s(24)
        capacity = max_devices_for_reliability(sf12, units.HOUR, 0.9)
        assert capacity < 200

    def test_slower_reporting_scales_linearly(self):
        hourly = max_devices_for_reliability(0.01, units.HOUR)
        daily = max_devices_for_reliability(0.01, units.DAY)
        assert daily == pytest.approx(24 * hourly, rel=0.01)

    def test_capacity_table(self):
        table = capacity_table({"a": 0.001, "b": 0.1})
        # int truncation makes the ratio approximate, not exact.
        assert table["a"] == pytest.approx(100 * table["b"], rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_devices_for_reliability(0.001, units.HOUR, min_delivery=1.0)
        with pytest.raises(ValueError):
            max_devices_for_reliability(0.0, units.HOUR)


class TestDensitySweep:
    def test_monotone_delivery(self):
        rows = density_sweep(0.37, units.HOUR, (10, 100, 1000, 10_000))
        probs = [r.delivery_probability for r in rows]
        assert probs == sorted(probs, reverse=True)

    def test_effective_reports_saturate(self):
        # Beyond the ALOHA peak, adding devices reduces goodput.
        rows = density_sweep(1.0, units.HOUR, (1800, 3600, 14_400))
        goodput = [r.effective_reports_per_hour for r in rows]
        assert goodput[0] > goodput[2]
