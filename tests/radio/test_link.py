"""Tests for repro.radio.link."""

import numpy as np
import pytest

from repro.radio import (
    PathLossModel,
    RadioSpec,
    attempt_delivery,
    link_budget,
    max_range_m,
    packet_success_probability,
    received_power_dbm,
)


def spec(**kw):
    defaults = dict(
        name="test",
        frequency_hz=915e6,
        tx_power_dbm=14.0,
        sensitivity_dbm=-120.0,
        bitrate_bps=1000.0,
    )
    defaults.update(kw)
    return RadioSpec(**defaults)


class TestPathLoss:
    def test_loss_increases_with_distance(self):
        model = PathLossModel(exponent=3.0)
        assert model.mean_loss_db(100.0, 915e6) > model.mean_loss_db(10.0, 915e6)

    def test_exponent_slope(self):
        model = PathLossModel(exponent=2.0, shadowing_sigma_db=0.0)
        # 10x distance at exponent 2 = +20 dB.
        delta = model.mean_loss_db(100.0, 915e6) - model.mean_loss_db(10.0, 915e6)
        assert delta == pytest.approx(20.0)

    def test_higher_frequency_higher_loss(self):
        model = PathLossModel()
        assert model.mean_loss_db(100.0, 2.45e9) > model.mean_loss_db(100.0, 915e6)

    def test_penetration_adds_flat_db(self):
        plain = PathLossModel(penetration_db=0.0)
        concrete = PathLossModel(penetration_db=12.0)
        delta = concrete.mean_loss_db(50.0, 915e6) - plain.mean_loss_db(50.0, 915e6)
        assert delta == pytest.approx(12.0)

    def test_below_reference_clamped(self):
        model = PathLossModel(reference_distance_m=1.0)
        assert model.mean_loss_db(0.5, 915e6) == model.mean_loss_db(1.0, 915e6)

    def test_shadowing_sampling_statistics(self, rng):
        model = PathLossModel(shadowing_sigma_db=6.0)
        draws = np.array([model.sample_loss_db(100.0, 915e6, rng) for _ in range(4000)])
        assert draws.std() == pytest.approx(6.0, rel=0.1)
        assert draws.mean() == pytest.approx(model.mean_loss_db(100.0, 915e6), abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathLossModel(exponent=0.5)
        with pytest.raises(ValueError):
            PathLossModel(reference_distance_m=0.0)
        with pytest.raises(ValueError):
            PathLossModel().mean_loss_db(0.0, 915e6)


class TestPacketSuccess:
    def test_half_at_sensitivity(self):
        s = spec()
        assert packet_success_probability(s, -120.0) == pytest.approx(0.5)

    def test_monotone_in_rx_power(self):
        s = spec()
        values = [packet_success_probability(s, p) for p in (-130, -120, -110)]
        assert values[0] < values[1] < values[2]

    def test_strong_signal_near_one(self):
        assert packet_success_probability(spec(), -90.0) > 0.999

    def test_received_power(self):
        assert received_power_dbm(spec(tx_power_dbm=14.0), 100.0) == -86.0


class TestLinkBudget:
    def test_margin_definition(self):
        budget = link_budget(spec(), PathLossModel(shadowing_sigma_db=0.0), 100.0)
        assert budget.margin_db == pytest.approx(
            budget.rx_power_dbm - spec().sensitivity_dbm
        )

    def test_closer_is_better(self):
        model = PathLossModel()
        near = link_budget(spec(), model, 10.0)
        far = link_budget(spec(), model, 1000.0)
        assert near.mean_success > far.mean_success


class TestMaxRange:
    def test_sub_ghz_outranges_2_4(self):
        model = PathLossModel(exponent=3.0)
        lora_like = spec(frequency_hz=915e6, sensitivity_dbm=-132.0)
        zigbee_like = spec(frequency_hz=2.45e9, tx_power_dbm=0.0, sensitivity_dbm=-100.0)
        assert max_range_m(lora_like, model) > 10.0 * max_range_m(zigbee_like, model)

    def test_range_shrinks_with_required_success(self):
        model = PathLossModel()
        assert max_range_m(spec(), model, 0.99) < max_range_m(spec(), model, 0.5)

    def test_hopeless_radio_zero_range(self):
        model = PathLossModel()
        dead = spec(tx_power_dbm=-100.0, sensitivity_dbm=-40.0)
        assert max_range_m(dead, model) == 0.0

    def test_bad_required_success(self):
        with pytest.raises(ValueError):
            max_range_m(spec(), PathLossModel(), required_success=1.0)


class TestAttemptDelivery:
    def test_short_link_almost_always_works(self, rng):
        model = PathLossModel(shadowing_sigma_db=2.0)
        outcomes = [attempt_delivery(spec(), model, 10.0, rng) for _ in range(300)]
        assert sum(outcomes) > 290

    def test_absurd_link_almost_always_fails(self, rng):
        model = PathLossModel()
        outcomes = [attempt_delivery(spec(), model, 80_000.0, rng) for _ in range(300)]
        assert sum(outcomes) < 10

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            spec(frequency_hz=0.0)
        with pytest.raises(ValueError):
            spec(bitrate_bps=0.0)
        with pytest.raises(ValueError):
            spec(per_slope_db=0.0)
