"""Unit tests for the two-tier content-addressed response cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import ResponseCache
from repro.serve.cache import CACHE_SUFFIX, body_sha256


def test_memory_roundtrip_and_stats():
    cache = ResponseCache(max_memory_bytes=1024)
    assert cache.get("k1") is None
    cache.put("k1", b"hello")
    assert cache.get("k1") == b"hello"
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.insertions == 1
    assert cache.memory_bytes == 5


def test_memory_lru_evicts_by_bytes():
    cache = ResponseCache(max_memory_bytes=10)
    cache.put("a", b"aaaa")
    cache.put("b", b"bbbb")
    cache.get("a")  # refresh a; b is now least-recent
    cache.put("c", b"cccc")  # 12 bytes total -> evict b
    assert cache.get("b") is None
    assert cache.get("a") == b"aaaa"
    assert cache.get("c") == b"cccc"
    assert cache.stats.memory_evictions == 1
    assert cache.memory_bytes <= 10


def test_oversized_body_skips_memory_tier(tmp_path):
    cache = ResponseCache(max_memory_bytes=4, disk_dir=str(tmp_path))
    cache.put("big", b"0123456789")
    assert cache.memory_bytes == 0
    # Still servable from the disk tier.
    assert cache.get("big") == b"0123456789"
    assert cache.stats.disk_hits == 1


def test_disk_roundtrip_promotes_to_memory(tmp_path):
    cache = ResponseCache(max_memory_bytes=1024, disk_dir=str(tmp_path))
    cache.put("k", b"payload")
    # Drop the memory tier to force the disk path.
    cache._memory.clear()
    cache._memory_bytes = 0
    assert cache.get("k") == b"payload"
    assert cache.stats.disk_hits == 1
    # Promoted: second read is a memory hit.
    assert cache.get("k") == b"payload"
    assert cache.stats.memory_hits == 1


def test_disk_file_is_sealed(tmp_path):
    cache = ResponseCache(disk_dir=str(tmp_path))
    cache.put("deadbeef", b"body-bytes")
    path = tmp_path / ("deadbeef" + CACHE_SUFFIX)
    raw = path.read_bytes()
    header_line, body = raw.split(b"\n", 1)
    header = json.loads(header_line)
    assert header["kind"] == "serve-cache"
    assert header["key"] == "deadbeef"
    assert header["body_bytes"] == len(body) == 10
    assert header["body_sha256"] == body_sha256(b"body-bytes")
    assert body == b"body-bytes"


def test_corrupt_disk_entry_purged_not_served(tmp_path):
    cache = ResponseCache(disk_dir=str(tmp_path))
    cache.put("k", b"good-bytes")
    path = tmp_path / ("k" + CACHE_SUFFIX)
    raw = path.read_bytes()
    path.write_bytes(raw[:-3] + b"XXX")  # flip tail bytes under the seal
    cache._memory.clear()
    cache._memory_bytes = 0
    assert cache.get("k") is None
    assert cache.stats.verify_failures == 1
    assert not path.exists()
    # A truncated file is likewise a miss, not garbage.
    cache.put("t", b"truncate-me")
    tpath = tmp_path / ("t" + CACHE_SUFFIX)
    tpath.write_bytes(tpath.read_bytes()[:-4])
    cache._memory.clear()
    cache._memory_bytes = 0
    assert cache.get("t") is None
    assert cache.stats.verify_failures == 2


def test_adopts_prior_process_entries(tmp_path):
    first = ResponseCache(disk_dir=str(tmp_path))
    first.put("k1", b"one")
    first.put("k2", b"two")
    second = ResponseCache(disk_dir=str(tmp_path))
    assert second.get("k1") == b"one"
    assert second.get("k2") == b"two"
    assert second.stats.disk_hits == 2
    assert second.disk_bytes == first.disk_bytes


def test_disk_lru_evicts_files(tmp_path):
    cache = ResponseCache(disk_dir=str(tmp_path), max_disk_bytes=350)
    for index in range(4):
        cache.put(f"k{index}", bytes(100))  # ~220 bytes sealed each
    names = sorted(os.listdir(tmp_path))
    assert cache.stats.disk_evictions >= 2
    assert cache.disk_bytes <= 350
    assert len(names) == len(cache._disk)


def test_put_is_idempotent(tmp_path):
    cache = ResponseCache(disk_dir=str(tmp_path))
    cache.put("k", b"same")
    cache.put("k", b"same")
    assert len(cache) == 1
    assert len(os.listdir(tmp_path)) == 1
    assert cache.get("k") == b"same"


def test_put_rejects_non_bytes():
    cache = ResponseCache()
    with pytest.raises(TypeError, match="response bytes"):
        cache.put("k", "a string")  # type: ignore[arg-type]


def test_negative_bounds_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        ResponseCache(max_memory_bytes=-1)
