"""Shared helpers for the serving-layer suites.

The concurrency tests stub the compute function (they test the
service's scheduling, not the simulator), while the end-to-end and
property suites run real scenarios at tiny horizons through a thread
executor — the compute path is identical, only the process boundary is
elided, which keeps the suite fast and sandbox-proof.
"""

from __future__ import annotations

import asyncio
import os
from typing import Dict, Optional, Tuple

from hypothesis import HealthCheck, settings

settings.register_profile(
    "chaos",
    derandomize=True,
    deadline=None,
    max_examples=6,
    suppress_health_check=[HealthCheck.too_slow],
)
_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)


def run_async(coro):
    """Run one coroutine to completion (no pytest-asyncio dependency)."""
    return asyncio.run(coro)


async def http_request(
    port: int,
    method: str,
    target: str,
    body: bytes = b"",
    reader_writer: Optional[Tuple] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """A minimal HTTP/1.1 client for the suites.

    Pass ``reader_writer`` (from :func:`open_keepalive`) to reuse one
    connection across requests — the keep-alive path the load harness
    exercises.
    """
    if reader_writer is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = reader_writer
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ": " in line:
            name, value = line.split(": ", 1)
            headers[name.lower()] = value
    payload = await reader.readexactly(int(headers["content-length"]))
    if reader_writer is None:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, headers, payload


async def open_keepalive(port: int):
    """One reusable client connection."""
    return await asyncio.open_connection("127.0.0.1", port)
