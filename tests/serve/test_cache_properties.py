"""Property tests for the canonical request form and the perfect cache.

Three properties carry the serving layer:

1. parse ∘ serialize is a fixed point — the canonical form is stable,
   so a request can be archived, replayed, and re-keyed forever.
2. The content digest ignores JSON spelling — key order, float
   formatting (``2`` vs ``2.0``), and override insertion order cannot
   split one computation across two cache keys.
3. A cache hit is byte-identical to the miss that populated it and to
   a fresh computation — the "perfect cache" claim, sampled across
   random (scenario, seed, overrides) draws.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import run_async
from repro.experiment.scenarios import SCENARIOS
from repro.faults.plans import pinned_chaos_plan
from repro.serve import (
    ResponseCache,
    ScenarioService,
    compute_response,
    parse_request,
    parse_request_json,
)

SCENARIO_NAMES = sorted(SCENARIOS)

OVERRIDES = st.fixed_dictionaries(
    {},
    optional={
        "payload_bytes": st.integers(min_value=1, max_value=128),
        "storage_j": st.floats(min_value=0.5, max_value=10.0),
        "maintain_gateways": st.booleans(),
        "harvester": st.sampled_from(["cathodic", "solar", "vibration"]),
    },
)


def run_payloads():
    return st.fixed_dictionaries(
        {"scenario": st.sampled_from(SCENARIO_NAMES)},
        optional={
            "seed": st.integers(min_value=0, max_value=2**31 - 1),
            "years": st.floats(min_value=0.1, max_value=100.0),
            "report_days": st.floats(min_value=0.05, max_value=30.0),
            "overrides": OVERRIDES,
            "audit": st.booleans(),
            "faults": st.sampled_from([None, pinned_chaos_plan().to_dict()]),
        },
    )


@settings(deadline=None, max_examples=60)
@given(payload=run_payloads())
def test_parse_serialize_is_fixed_point(payload):
    request = parse_request(payload, "run")
    canonical = request.to_json()
    reparsed = parse_request(json.loads(canonical), "run")
    assert reparsed == request
    assert reparsed.to_json() == canonical
    assert reparsed.digest() == request.digest()


@settings(deadline=None, max_examples=60)
@given(
    payload=run_payloads(),
    runs=st.integers(min_value=1, max_value=20),
    base_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_mc_parse_serialize_is_fixed_point(payload, runs, base_seed):
    payload = dict(payload)
    payload.pop("seed", None)
    payload["runs"] = runs
    payload["base_seed"] = base_seed
    request = parse_request(payload, "mc")
    reparsed = parse_request(json.loads(request.to_json()), "mc")
    assert reparsed == request
    assert reparsed.digest() == request.digest()


@settings(deadline=None, max_examples=60)
@given(payload=run_payloads())
def test_digest_ignores_json_spelling(payload):
    baseline = parse_request(payload, "run").digest()

    # Key order: reversed insertion order, at both nesting levels.
    reordered = {key: payload[key] for key in reversed(list(payload))}
    if isinstance(reordered.get("overrides"), dict):
        reordered["overrides"] = {
            key: value
            for key, value in reversed(list(reordered["overrides"].items()))
        }
    assert parse_request(reordered, "run").digest() == baseline

    # Float formatting: integral floats spelled as JSON integers.
    respelled = dict(payload)
    for name in ("years", "report_days"):
        value = respelled.get(name)
        if isinstance(value, float) and value.is_integer():
            respelled[name] = int(value)
    if isinstance(respelled.get("overrides"), dict):
        overrides = dict(respelled["overrides"])
        value = overrides.get("storage_j")
        if isinstance(value, float) and value.is_integer():
            overrides["storage_j"] = int(value)
        respelled["overrides"] = overrides
    assert parse_request(respelled, "run").digest() == baseline

    # Wire-level spelling: pretty-printed vs compact JSON.
    for text in (
        json.dumps(payload, indent=2),
        json.dumps(payload, sort_keys=True, separators=(",", ":")),
    ):
        parsed = parse_request_json(text.encode("utf-8"), "run")
        assert parsed.digest() == baseline


def test_integral_float_spellings_share_one_digest():
    # The deterministic core of the property above, kept example-free so
    # a hypothesis regression cannot hide it.
    spellings = [b'{"scenario":"owned-only","years":2}',
                 b'{"scenario":"owned-only","years":2.0}',
                 b'{"scenario":"owned-only","years":2.00e0}',
                 b'{"years":2.0,"scenario":"owned-only"}']
    digests = {
        parse_request_json(body, "run").digest() for body in spellings
    }
    assert len(digests) == 1


@settings(deadline=None, max_examples=5)
@given(
    scenario=st.sampled_from(["owned-only", "as-designed", "helium-only"]),
    seed=st.integers(min_value=0, max_value=10_000),
    overrides=OVERRIDES,
)
def test_hit_bytes_equal_miss_bytes(scenario, seed, overrides):
    """A cache hit is provably byte-identical to a cold run."""
    request = parse_request(
        {
            "scenario": scenario,
            "seed": seed,
            "years": 0.1,
            "report_days": 5.0,
            "overrides": overrides,
        },
        "run",
    )

    async def scenario_roundtrip():
        service = ScenarioService(
            workers=1,
            cache=ResponseCache(),
            executor=ThreadPoolExecutor(max_workers=1),
        )
        try:
            miss = await service.handle(request)
            hit = await service.handle(request)
        finally:
            service.close()
        return miss, hit

    miss, hit = run_async(scenario_roundtrip())
    assert miss.status == 200 and miss.cache == "miss"
    assert hit.status == 200 and hit.cache == "hit"
    assert hit.body == miss.body
    assert hit.digest == miss.digest == request.digest()
    # ... and identical to a cold computation with no service at all.
    assert compute_response(request) == miss.body
