"""Validation unit tests for the canonical request model."""

from __future__ import annotations

import pytest

from repro.core import units
from repro.faults.plans import pinned_chaos_plan
from repro.serve import RequestError, parse_request, parse_request_json
from repro.serve.request import MC_DEFAULTS, RUN_DEFAULTS


def test_run_defaults_mirror_cli():
    request = parse_request({"scenario": "owned-only"}, "run")
    assert request.endpoint == "run"
    assert request.seed == RUN_DEFAULTS["seed"] == 2021
    assert request.years == RUN_DEFAULTS["years"] == 10.0
    assert request.report_days == RUN_DEFAULTS["report_days"] == 1.0
    assert request.runs == 0 and request.base_seed == 0
    assert request.faults is None and request.audit is False


def test_mc_defaults_mirror_cli():
    request = parse_request({"scenario": "as-designed"}, "mc")
    assert request.endpoint == "mc"
    assert request.runs == MC_DEFAULTS["runs"] == 10
    assert request.base_seed == MC_DEFAULTS["base_seed"] == 100
    assert request.years == 25.0 and request.report_days == 2.0


def test_to_task_carries_everything():
    plan = pinned_chaos_plan()
    request = parse_request(
        {
            "scenario": "as-designed",
            "seed": 7,
            "years": 2.0,
            "report_days": 3.0,
            "overrides": {"payload_bytes": 48},
            "faults": plan.to_dict(),
            "audit": True,
        },
        "run",
    )
    task = request.to_task()
    assert task.scenario == "as-designed"
    assert task.horizon == units.years(2.0)
    assert task.report_interval == units.days(3.0)
    assert task.overrides == (("payload_bytes", 48),)
    assert task.faults == plan
    assert task.audit is True


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ("not a dict", "JSON object"),
        ({"scenario": "no-such"}, "unknown scenario"),
        ({"scenario": "owned-only", "bogus": 1}, "unknown field"),
        ({"scenario": "owned-only", "years": "ten"}, "must be a number"),
        ({"scenario": "owned-only", "years": True}, "must be a number"),
        ({"scenario": "owned-only", "years": -1.0}, "years must be in"),
        ({"scenario": "owned-only", "years": 1e9}, "years must be in"),
        ({"scenario": "owned-only", "seed": 1.5}, "must be an integer"),
        ({"scenario": "owned-only", "audit": 1}, "must be a boolean"),
        ({"scenario": "owned-only", "report_days": 0}, "report_days"),
        ({"scenario": "owned-only", "overrides": []}, "overrides must be"),
        (
            {"scenario": "owned-only", "overrides": {"seed": 3}},
            "reserved",
        ),
        (
            {"scenario": "owned-only", "overrides": {"horizon": 3.0}},
            "reserved",
        ),
        (
            {"scenario": "owned-only", "overrides": {"no_field": 3}},
            "unknown override",
        ),
        (
            {"scenario": "owned-only", "overrides": {"payload_bytes": 1.5}},
            "must be an integer",
        ),
        (
            {"scenario": "owned-only", "overrides": {"maintain_gateways": 1}},
            "must be a boolean",
        ),
        (
            {"scenario": "owned-only", "overrides": {"addition_harvesters": 1}},
            "not a servable config field",
        ),
        ({"scenario": "owned-only", "faults": {"oops": 1}}, "bad fault plan"),
        ({"scenario": "owned-only", "version": 99}, "unsupported request"),
    ],
)
def test_run_request_rejections(payload, fragment):
    with pytest.raises(RequestError, match=fragment):
        parse_request(payload, "run")


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({"scenario": "owned-only", "runs": 0}, "runs must be in"),
        ({"scenario": "owned-only", "runs": 10**7}, "runs must be in"),
        ({"scenario": "owned-only", "seed": 1}, "unknown field"),
        ({"scenario": "owned-only", "base_seed": 2.5}, "must be an integer"),
    ],
)
def test_mc_request_rejections(payload, fragment):
    with pytest.raises(RequestError, match=fragment):
        parse_request(payload, "mc")


def test_run_rejects_mc_fields():
    with pytest.raises(RequestError, match="unknown field"):
        parse_request({"scenario": "owned-only", "runs": 4}, "run")


def test_parse_request_json_rejects_bad_bytes():
    with pytest.raises(RequestError, match="invalid JSON"):
        parse_request_json(b"{nope", "run")
    # An empty body is the all-defaults request for neither endpoint:
    # scenario is required.
    with pytest.raises(RequestError, match="unknown scenario"):
        parse_request_json(b"", "run")


def test_unknown_endpoint_rejected():
    with pytest.raises(RequestError, match="unknown endpoint"):
        parse_request({"scenario": "owned-only"}, "batch")


def test_int_float_coercion_normalizes():
    a = parse_request({"scenario": "owned-only", "years": 2}, "run")
    b = parse_request({"scenario": "owned-only", "years": 2.0}, "run")
    assert a == b
    assert a.digest() == b.digest()
    assert isinstance(a.years, float)


def test_override_coercion_against_config_types():
    request = parse_request(
        {
            "scenario": "owned-only",
            "overrides": {
                "storage_j": 5,            # int for a float field
                "payload_bytes": 32,       # int field stays int
                "maintain_gateways": False,
                "harvester": "solar",
            },
        },
        "run",
    )
    overrides = dict(request.overrides)
    assert overrides["storage_j"] == 5.0
    assert isinstance(overrides["storage_j"], float)
    assert overrides["payload_bytes"] == 32
    assert overrides["maintain_gateways"] is False
    assert overrides["harvester"] == "solar"
