"""End-to-end tests: real HTTP server, real scenarios, exact bytes.

The acceptance contract of the serving layer is byte-identity with the
offline CLI: the body of a ``POST /v1/run`` response must equal, byte
for byte, the ``--metrics`` JSONL file that ``python -m repro run``
writes for the same parameters (and ``/v1/mc`` likewise for ``mc``).
A golden fixture under ``golden/`` pins the response for one faulted,
audited request so a silent drift in *either* path fails loudly.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor

from conftest import http_request, open_keepalive, run_async
from repro.cli import main as cli_main
from repro.faults.plans import pinned_chaos_plan
from repro.serve import (
    HttpServer,
    ResponseCache,
    ScenarioService,
    compute_response,
    parse_request,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def make_service() -> ScenarioService:
    # Thread executor: identical compute path, no process-spawn latency.
    return ScenarioService(
        workers=2,
        cache=ResponseCache(),
        executor=ThreadPoolExecutor(max_workers=2),
    )


async def _serve(scenario_fn):
    """Start a real server on a free port, run the scenario, stop it."""
    service = make_service()
    server = HttpServer(service, port=0)
    await server.start()
    try:
        return await scenario_fn(server)
    finally:
        await server.stop()


def post_json(port: int, target: str, payload: dict, conn=None):
    body = json.dumps(payload).encode("utf-8")
    return http_request(port, "POST", target, body=body, reader_writer=conn)


def test_run_endpoint_byte_identical_to_cli(tmp_path):
    payload = {"scenario": "owned-only", "seed": 2021, "years": 1.0}

    async def scenario(server):
        conn = await open_keepalive(server.port)
        miss = await post_json(server.port, "/v1/run", payload, conn=conn)
        hit = await post_json(server.port, "/v1/run", payload, conn=conn)
        metrics = await http_request(server.port, "GET", "/metrics")
        conn[1].close()
        return miss, hit, metrics

    miss, hit, metrics = run_async(_serve(scenario))

    status, headers, body = miss
    assert status == 200
    assert headers["x-cache"] == "miss"
    assert headers["content-type"] == "application/json"
    hit_status, hit_headers, hit_body = hit
    assert hit_status == 200
    assert hit_headers["x-cache"] == "hit"
    assert hit_body == body  # the perfect-cache contract, over the wire
    assert hit_headers["x-request-digest"] == headers["x-request-digest"]
    assert headers["x-request-digest"].startswith("sha256:")

    # The served body is exactly the offline --metrics file.
    offline = tmp_path / "run.jsonl"
    rc = cli_main(
        ["run", "owned-only", "--seed", "2021", "--years", "1",
         "--metrics", str(offline)]
    )
    assert rc == 0
    assert offline.read_bytes() == body

    # The hit/miss ratio is visible at GET /metrics.
    text = metrics[2].decode("utf-8")
    assert "serve_cache_hits_total 1" in text
    assert "serve_cache_misses_total 1" in text
    assert 'serve_requests_total{endpoint="run",status="200"} 2' in text


def test_faulted_audited_run_matches_cli_and_golden(tmp_path):
    plan = pinned_chaos_plan()
    payload = {
        "scenario": "as-designed",
        "seed": 2021,
        "years": 2.0,
        "report_days": 2.0,
        "faults": plan.to_dict(),
        "audit": True,
    }

    async def scenario(server):
        return await post_json(server.port, "/v1/run", payload)

    status, headers, body = run_async(_serve(scenario))
    assert status == 200

    # Pinned golden fixture: catches drift in either the service or the
    # simulator without needing the CLI at all.
    with open(
        os.path.join(GOLDEN_DIR, "run_as-designed_chaos_seed2021.json")
    ) as handle:
        golden = json.load(handle)
    assert headers["x-request-digest"] == golden["digest"]
    assert len(body) == golden["body_bytes"]
    assert hashlib.sha256(body).hexdigest() == golden["body_sha256"]
    request = parse_request(golden["request"], "run")
    assert request.digest() == golden["digest"]

    # ... and the offline CLI, faults + audit included, writes the same
    # bytes.
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))
    offline = tmp_path / "run.jsonl"
    rc = cli_main(
        ["run", "as-designed", "--seed", "2021", "--years", "2",
         "--report-days", "2", "--faults", str(plan_path), "--audit",
         "--metrics", str(offline)]
    )
    assert rc == 0
    assert offline.read_bytes() == body


def test_mc_endpoint_byte_identical_to_cli(tmp_path):
    payload = {
        "scenario": "owned-only",
        "runs": 3,
        "base_seed": 100,
        "years": 0.5,
        "report_days": 2.0,
    }

    async def scenario(server):
        miss = await post_json(server.port, "/v1/mc", payload)
        hit = await post_json(server.port, "/v1/mc", payload)
        return miss, hit

    miss, hit = run_async(_serve(scenario))
    assert miss[0] == hit[0] == 200
    assert miss[1]["x-cache"] == "miss" and hit[1]["x-cache"] == "hit"
    assert miss[2] == hit[2]

    # One line per run plus the merged line, failure count included.
    lines = miss[2].decode("utf-8").splitlines()
    assert len(lines) == 4
    merged = json.loads(lines[-1])
    assert merged["merged"] is True
    assert merged["runs"] == 3
    assert merged["failures"] == 0

    offline = tmp_path / "mc.jsonl"
    rc = cli_main(
        ["mc", "owned-only", "--runs", "3", "--base-seed", "100",
         "--years", "0.5", "--report-days", "2", "--workers", "2",
         "--metrics", str(offline)]
    )
    assert rc == 0
    assert offline.read_bytes() == miss[2]


def test_default_payloads_share_cli_defaults():
    # An empty overrides/faults request must hash identically to the
    # minimal spelling — otherwise clients split the cache.
    a = parse_request({"scenario": "owned-only"}, "run")
    b = parse_request(
        {"scenario": "owned-only", "overrides": {}, "faults": None,
         "audit": False, "seed": 2021, "years": 10.0, "report_days": 1.0},
        "run",
    )
    assert a == b and a.digest() == b.digest()


def test_http_surface(tmp_path):
    async def scenario(server):
        port = server.port
        results = {}
        results["healthz"] = await http_request(port, "GET", "/healthz")
        results["missing"] = await http_request(port, "GET", "/nope")
        results["method"] = await http_request(port, "GET", "/v1/run")
        results["bad_scenario"] = await post_json(
            port, "/v1/run", {"scenario": "atlantis"}
        )
        results["bad_json"] = await http_request(
            port, "POST", "/v1/run", body=b"{nope"
        )
        results["bad_field"] = await post_json(
            port, "/v1/mc", {"scenario": "owned-only", "seed": 1}
        )
        server.service._draining = True
        results["draining"] = await http_request(port, "GET", "/healthz")
        server.service._draining = False
        return results

    results = run_async(_serve(scenario))

    status, headers, body = results["healthz"]
    assert status == 200 and body == b"ok\n"
    assert headers["content-type"] == "text/plain"

    assert results["missing"][0] == 404
    assert results["method"][0] == 405

    status, _headers, body = results["bad_scenario"]
    assert status == 400
    error = json.loads(body)
    assert "unknown scenario" in error["error"] and error["status"] == 400

    assert results["bad_json"][0] == 400
    assert b"invalid JSON" in results["bad_json"][2]
    # `seed` belongs to /v1/run; /v1/mc wants runs/base_seed.
    assert results["bad_field"][0] == 400
    assert b"unknown field" in results["bad_field"][2]

    status, _headers, body = results["draining"]
    assert status == 503 and body == b"draining\n"


def test_golden_fixture_matches_direct_compute():
    """The fixture is reproducible without any server at all."""
    with open(
        os.path.join(GOLDEN_DIR, "run_as-designed_chaos_seed2021.json")
    ) as handle:
        golden = json.load(handle)
    request = parse_request(golden["request"], "run")
    body = compute_response(request)
    assert hashlib.sha256(body).hexdigest() == golden["body_sha256"]
