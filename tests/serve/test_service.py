"""Concurrency-behavior tests for :class:`ScenarioService`.

These stub the compute function — they exercise the service's
scheduling contract (single-flight, backpressure, drain, timeouts,
failure isolation), not the simulator.  A thread executor keeps the
stub observable (shared events and counters) where a process pool
would hide it.
"""

from __future__ import annotations

import asyncio
import threading

from concurrent.futures import ThreadPoolExecutor

from conftest import run_async
from repro.serve import ResponseCache, ScenarioService, parse_request


def make_request(seed: int):
    return parse_request(
        {"scenario": "owned-only", "seed": seed, "years": 0.1}, "run"
    )


def make_service(compute, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_limit", 4)
    kwargs.setdefault("timeout_s", 10.0)
    return ScenarioService(
        cache=ResponseCache(),
        compute=compute,
        executor=ThreadPoolExecutor(max_workers=2),
        **kwargs,
    )


async def wait_until(predicate, timeout_s: float = 5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


def test_single_flight_exactly_one_execution():
    calls = []
    started = threading.Event()
    release = threading.Event()

    def compute(request):
        calls.append(request.seed)
        started.set()
        assert release.wait(5.0)
        return b"the-one-body\n"

    async def scenario():
        service = make_service(compute)
        request = make_request(seed=1)
        waiters = [
            asyncio.ensure_future(service.handle(request)) for _ in range(8)
        ]
        # Release the (single) execution only once every waiter has had a
        # chance to register against it.
        await wait_until(started.is_set)
        await wait_until(lambda: service._coalesced.value == 7)
        release.set()
        responses = await asyncio.gather(*waiters)
        service.close()
        return service, responses

    service, responses = run_async(scenario())
    assert len(calls) == 1  # exactly one pool execution
    assert all(r.status == 200 for r in responses)
    assert all(r.body == b"the-one-body\n" for r in responses)
    assert sorted(r.cache for r in responses) == ["coalesced"] * 7 + ["miss"]
    assert "serve_executions_total 1" in service.metrics_text()


def test_cache_hit_never_touches_pool():
    calls = []

    def compute(request):
        calls.append(request.seed)
        return b"cached-body\n"

    async def scenario():
        service = make_service(compute)
        first = await service.handle(make_request(seed=3))
        # Break the pool on purpose: a hit must not need it.
        service.close()
        service._executor = None
        service._owns_executor = False
        second = await service.handle(make_request(seed=3))
        return first, second

    first, second = run_async(scenario())
    assert (first.cache, second.cache) == ("miss", "hit")
    assert first.body == second.body == b"cached-body\n"
    assert calls == [3]


def test_queue_full_gives_429_and_recovers():
    release = threading.Event()

    def compute(request):
        assert release.wait(5.0)
        return b"slow-body\n"

    async def scenario():
        service = make_service(compute, queue_limit=1)
        blocked = asyncio.ensure_future(service.handle(make_request(seed=1)))
        await wait_until(lambda: service.inflight_jobs == 1)

        refused = await service.handle(make_request(seed=2))
        assert refused.status == 429
        assert b"queue is full" in refused.body
        # A hit for already-cached content is still served at capacity.
        release.set()
        first = await blocked
        assert first.status == 200 and first.cache == "miss"
        hit = await service.handle(make_request(seed=1))
        assert hit.status == 200 and hit.cache == "hit"
        # ... and the refused request succeeds once the queue drains.
        retried = await service.handle(make_request(seed=2))
        assert retried.status == 200 and retried.cache == "miss"
        service.close()
        return service

    service = run_async(scenario())
    assert "serve_requests_total" in service.metrics_text()


def test_drain_finishes_inflight_then_refuses():
    release = threading.Event()

    def compute(request):
        assert release.wait(5.0)
        return b"drained-body\n"

    async def scenario():
        service = make_service(compute)
        inflight = asyncio.ensure_future(service.handle(make_request(seed=1)))
        await wait_until(lambda: service.inflight_jobs == 1)

        drainer = asyncio.ensure_future(service.drain())
        await asyncio.sleep(0.01)
        assert service.draining
        # New computations are refused mid-drain ...
        refused = await service.handle(make_request(seed=2))
        assert refused.status == 503
        assert b"draining" in refused.body

        release.set()
        finished = await inflight
        await asyncio.wait_for(drainer, timeout=5.0)
        assert service.inflight_jobs == 0
        # ... but the accepted request was answered in full,
        assert finished.status == 200
        assert finished.body == b"drained-body\n"
        # ... and cached content is still served after the drain.
        hit = await service.handle(make_request(seed=1))
        assert hit.status == 200 and hit.cache == "hit"
        service.close()

    run_async(scenario())


def test_timeout_504_without_cache_poisoning():
    release = threading.Event()

    def compute(request):
        assert release.wait(5.0)
        return b"eventual-body\n"

    async def scenario():
        service = make_service(compute, timeout_s=0.05)
        request = make_request(seed=1)
        key = request.cache_key()

        timed_out = await service.handle(request)
        assert timed_out.status == 504
        assert b"timeout" in timed_out.body
        # Nothing half-written landed in the cache.
        cached = service.cache.get(key)
        assert cached is None

        # The run continues in the background and warms the cache.
        job = service._inflight.get(key)
        assert job is not None
        release.set()
        await asyncio.wait_for(job, timeout=5.0)
        hit = await service.handle(request)
        assert hit.status == 200 and hit.cache == "hit"
        assert hit.body == b"eventual-body\n"
        service.close()

    run_async(scenario())


def test_compute_failure_is_500_and_not_cached():
    attempts = []

    def compute(request):
        attempts.append(request.seed)
        if len(attempts) == 1:
            raise ValueError("injected defect")
        return b"second-try-body\n"

    async def scenario():
        service = make_service(compute)
        request = make_request(seed=9)

        failed = await service.handle(request)
        assert failed.status == 500
        assert b"ValueError" in failed.body and b"injected defect" in failed.body
        assert service.cache.get(request.cache_key()) is None
        await wait_until(lambda: service.inflight_jobs == 0)

        # The failure was not memoized: a retry recomputes and succeeds.
        retried = await service.handle(request)
        assert retried.status == 200 and retried.cache == "miss"
        assert retried.body == b"second-try-body\n"
        hit = await service.handle(request)
        assert hit.cache == "hit"
        text = service.metrics_text()
        assert "serve_compute_failures_total 1" in text
        service.close()

    run_async(scenario())
