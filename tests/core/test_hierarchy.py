"""Tests for repro.core.hierarchy."""

import pytest

from repro.core import Entity, Hierarchy, wire_by_fanout


class Device(Entity):
    TIER = "device"


class GatewayE(Entity):
    TIER = "gateway"


class BackhaulE(Entity):
    TIER = "backhaul"


class CloudE(Entity):
    TIER = "cloud"


def build_stack(sim, n_devices=6, n_gateways=2, redundancy=1):
    cloud = CloudE(sim)
    backhaul = BackhaulE(sim)
    backhaul.add_dependency(cloud)
    gateways = [GatewayE(sim) for _ in range(n_gateways)]
    for g in gateways:
        g.add_dependency(backhaul)
    devices = [Device(sim) for _ in range(n_devices)]
    wire_by_fanout(devices, gateways, redundancy=redundancy)
    h = Hierarchy()
    h.extend([cloud, backhaul, *gateways, *devices])
    for e in [cloud, backhaul, *gateways, *devices]:
        e.deploy()
    return h, cloud, backhaul, gateways, devices


class TestHierarchy:
    def test_tier_listing(self, sim):
        h, *_ = build_stack(sim)
        assert len(h.tier("device")) == 6
        assert len(h.tier("gateway")) == 2

    def test_duplicate_add_ignored(self, sim):
        h = Hierarchy()
        d = Device(sim)
        h.add(d)
        h.add(d)
        assert len(h.entities) == 1

    def test_fanout_stats(self, sim):
        h, *_ = build_stack(sim, n_devices=6, n_gateways=2)
        stats = h.tier_stats("gateway")
        assert stats.count == 2
        assert stats.mean_dependents == 3.0
        assert stats.max_dependents == 3

    def test_empty_tier_stats(self, sim):
        stats = Hierarchy().tier_stats("device")
        assert stats.count == 0
        assert stats.mean_dependents == 0.0

    def test_reachability_all_up(self, sim):
        h, *_ = build_stack(sim)
        assert len(h.reachable_devices()) == 6
        assert h.stranded_devices() == []

    def test_gateway_failure_strands_its_devices(self, sim):
        h, cloud, backhaul, gateways, devices = build_stack(
            sim, n_devices=6, n_gateways=2, redundancy=1
        )
        gateways[0].fail()
        assert len(h.stranded_devices()) == 3
        assert len(h.reachable_devices()) == 3

    def test_redundancy_two_survives_one_gateway(self, sim):
        h, cloud, backhaul, gateways, devices = build_stack(
            sim, n_devices=6, n_gateways=2, redundancy=2
        )
        gateways[0].fail()
        assert h.stranded_devices() == []

    def test_backhaul_failure_strands_everything(self, sim):
        h, cloud, backhaul, gateways, devices = build_stack(sim)
        backhaul.fail()
        assert len(h.stranded_devices()) == 6

    def test_blast_radius_grows_up_the_hierarchy(self, sim):
        h, cloud, backhaul, gateways, devices = build_stack(
            sim, n_devices=6, n_gateways=2, redundancy=1
        )
        gw_radius = len(h.blast_radius(gateways[0]))
        bh_radius = len(h.blast_radius(backhaul))
        assert gw_radius == 3
        assert bh_radius == 6
        assert bh_radius > gw_radius  # Figure 1's lifetime-variability arrow

    def test_blast_radius_restores_state(self, sim):
        h, cloud, backhaul, gateways, devices = build_stack(sim)
        h.blast_radius(backhaul)
        assert backhaul.alive

    def test_describe_renders_all_tiers(self, sim):
        h, *_ = build_stack(sim)
        text = h.describe()
        for tier in ("device", "gateway", "backhaul", "cloud"):
            assert tier in text


class TestWireByFanout:
    def test_round_robin_distribution(self, sim):
        gateways = [GatewayE(sim) for _ in range(3)]
        devices = [Device(sim) for _ in range(9)]
        wire_by_fanout(devices, gateways)
        assert all(len(g.dependents) == 3 for g in gateways)

    def test_empty_gateways_rejected(self, sim):
        with pytest.raises(ValueError):
            wire_by_fanout([Device(sim)], [])

    def test_redundancy_capped_at_gateway_count(self, sim):
        gateways = [GatewayE(sim) for _ in range(2)]
        devices = [Device(sim)]
        wire_by_fanout(devices, gateways, redundancy=5)
        assert len(devices[0].depends_on) == 2

    def test_bad_redundancy_rejected(self, sim):
        with pytest.raises(ValueError):
            wire_by_fanout([Device(sim)], [GatewayE(sim)], redundancy=0)
