"""Tests for repro.core.rng."""

import pytest

from repro.core.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("x").random(5)
        b = RandomStreams(seed=7).get("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random(5)
        b = RandomStreams(seed=2).get("x").random(5)
        assert not (a == b).all()

    def test_stream_independent_of_creation_order(self):
        s1 = RandomStreams(seed=3)
        s1.get("first").random(100)  # consume another stream heavily
        value_after = s1.get("target").random()

        s2 = RandomStreams(seed=3)
        value_direct = s2.get("target").random()
        assert value_after == value_direct

    def test_get_returns_same_generator(self):
        streams = RandomStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=0).get("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=-1)

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=9).fork(3).get("x").random()
        b = RandomStreams(seed=9).fork(3).get("x").random()
        assert a == b

    def test_forks_differ_from_parent_and_each_other(self):
        parent = RandomStreams(seed=9)
        f0 = parent.fork(0).get("x").random()
        f1 = parent.fork(1).get("x").random()
        p = parent.get("x").random()
        assert len({f0, f1, p}) == 3

    def test_fork_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=0).fork(-1)

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(RandomStreams(seed=5))
