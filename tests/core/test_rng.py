"""Tests for repro.core.rng."""

import pytest

from repro.core.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("x").random(5)
        b = RandomStreams(seed=7).get("x").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random(5)
        b = RandomStreams(seed=2).get("x").random(5)
        assert not (a == b).all()

    def test_stream_independent_of_creation_order(self):
        s1 = RandomStreams(seed=3)
        s1.get("first").random(100)  # consume another stream heavily
        value_after = s1.get("target").random()

        s2 = RandomStreams(seed=3)
        value_direct = s2.get("target").random()
        assert value_after == value_direct

    def test_get_returns_same_generator(self):
        streams = RandomStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=0).get("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=-1)

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=9).fork(3).get("x").random()
        b = RandomStreams(seed=9).fork(3).get("x").random()
        assert a == b

    def test_forks_differ_from_parent_and_each_other(self):
        parent = RandomStreams(seed=9)
        f0 = parent.fork(0).get("x").random()
        f1 = parent.fork(1).get("x").random()
        p = parent.get("x").random()
        assert len({f0, f1, p}) == 3

    def test_fork_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=0).fork(-1)

    def test_crc32_colliding_names_get_distinct_streams(self):
        # "plumless" and "buckeroo" share CRC32 0x4ddb0c25 — the classic
        # collision pair.  Under the old CRC32-keyed derivation they
        # silently shared one generator.
        import zlib

        assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")
        streams = RandomStreams(seed=7)
        a = streams.get("plumless").random(8)
        b = streams.get("buckeroo").random(8)
        assert not (a == b).all()

    def test_name_with_leading_nul_is_distinct(self):
        streams = RandomStreams(seed=7)
        a = streams.get("\x00x").random(8)
        b = streams.get("x").random(8)
        assert not (a == b).all()

    def test_crc32_colliding_fork_families_differ(self):
        # crc32(b"fork:3889:449") == crc32(b"fork:4279:2"), so the old
        # 32-bit fork derivation gave these two families the same seed.
        import zlib

        assert zlib.crc32(b"fork:3889:449") == zlib.crc32(b"fork:4279:2")
        a = RandomStreams(seed=3889).fork(449).get("x").random(8)
        b = RandomStreams(seed=4279).fork(2).get("x").random(8)
        assert not (a == b).all()

    def test_fork_of_fork_preserves_lineage(self):
        root = RandomStreams(seed=9)
        aa = root.fork(1).fork(2).get("x").random(8)
        ab = root.fork(2).fork(1).get("x").random(8)
        ba = root.fork(1).fork(1).get("x").random(8)
        assert not (aa == ab).all()
        assert not (aa == ba).all()

    def test_fork_reconstructible_from_integer_seed(self):
        # A forked family is fully described by its integer seed: a
        # worker process handed only `fork(i).seed` reproduces it.
        forked = RandomStreams(seed=9).fork(3)
        rebuilt = RandomStreams(seed=forked.seed)
        assert forked.get("x").random() == rebuilt.get("x").random()

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(RandomStreams(seed=5))
