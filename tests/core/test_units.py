"""Tests for repro.core.units."""

import math

import pytest

from repro.core import units


class TestConversions:
    def test_minute(self):
        assert units.minutes(2.0) == 120.0

    def test_hour(self):
        assert units.hours(1.0) == 3600.0

    def test_day(self):
        assert units.days(1.0) == 86400.0

    def test_week(self):
        assert units.weeks(1.0) == 7 * 86400.0

    def test_year_is_julian(self):
        assert units.years(1.0) == 365.25 * 86400.0

    def test_month_is_year_twelfth(self):
        assert math.isclose(units.months(12.0), units.years(1.0))

    def test_seconds_identity(self):
        assert units.seconds(5) == 5.0

    def test_roundtrip_years(self):
        assert math.isclose(units.as_years(units.years(50.0)), 50.0)

    def test_roundtrip_weeks(self):
        assert math.isclose(units.as_weeks(units.weeks(3.5)), 3.5)

    def test_roundtrip_days_hours_months(self):
        assert math.isclose(units.as_days(units.days(9.0)), 9.0)
        assert math.isclose(units.as_hours(units.hours(7.0)), 7.0)
        assert math.isclose(units.as_months(units.months(5.0)), 5.0)

    def test_paper_50_months_vs_50_years(self):
        # The abstract's contrast: device replacement every 50 months,
        # bridge replacement every 50 years, a factor of 12 apart.
        ratio = units.years(50.0) / units.months(50.0)
        assert math.isclose(ratio, 12.0)


class TestEnergyUnits:
    def test_watt_hours(self):
        assert units.watt_hours(1.0) == 3600.0

    def test_milliamp_hours(self):
        # 1000 mAh at 3 V = 3 Wh = 10.8 kJ.
        assert math.isclose(units.milliamp_hours(1000.0, volts=3.0), 10800.0)

    def test_milliamp_hours_rejects_bad_voltage(self):
        with pytest.raises(ValueError):
            units.milliamp_hours(1000.0, volts=0.0)


class TestFormatDuration:
    def test_seconds(self):
        assert units.format_duration(2.5) == "2.5s"

    def test_minutes(self):
        assert units.format_duration(90.0) == "1.5min"

    def test_hours(self):
        assert units.format_duration(7200.0) == "2h"

    def test_days(self):
        assert units.format_duration(units.days(3.0)) == "3d"

    def test_weeks(self):
        assert units.format_duration(units.weeks(5.0)) == "5wk"

    def test_years(self):
        assert units.format_duration(units.years(50.0)) == "50.00yr"

    def test_negative(self):
        assert units.format_duration(-3600.0) == "-1h"
