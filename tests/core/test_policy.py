"""Tests for repro.core.policy."""

from repro.core import (
    AttachmentPolicy,
    DeploymentPolicy,
    GatewayRole,
    InfrastructureOwnership,
)


class TestDeploymentPolicy:
    def test_takeaway_compliant_settings(self):
        p = DeploymentPolicy.takeaway_compliant()
        assert p.attachment is AttachmentPolicy.ANY_COMPATIBLE
        assert p.gateway_role is GatewayRole.ROUTER_ONLY
        assert p.ownership is InfrastructureOwnership.HEDGED

    def test_worst_practice_settings(self):
        p = DeploymentPolicy.worst_practice()
        assert p.attachment is AttachmentPolicy.INSTANCE_BOUND
        assert p.gateway_role is GatewayRole.STATEFUL_CONTROLLER
        assert p.ownership is InfrastructureOwnership.THIRD_PARTY

    def test_rehoming_follows_attachment(self):
        assert DeploymentPolicy.takeaway_compliant().devices_rehome
        assert not DeploymentPolicy.worst_practice().devices_rehome

    def test_gateway_swap_cost_factor(self):
        assert DeploymentPolicy.takeaway_compliant().gateway_swap_cost_factor == 1.0
        assert DeploymentPolicy.worst_practice().gateway_swap_cost_factor == 4.0

    def test_self_deploy_option(self):
        assert DeploymentPolicy.takeaway_compliant().can_self_deploy_infrastructure
        assert not DeploymentPolicy.worst_practice().can_self_deploy_infrastructure
        owned = DeploymentPolicy(ownership=InfrastructureOwnership.OWNED)
        assert owned.can_self_deploy_infrastructure

    def test_describe_mentions_all_axes(self):
        text = DeploymentPolicy.takeaway_compliant().describe()
        assert "any-compatible" in text
        assert "router-only" in text
        assert "hedged" in text

    def test_policies_are_frozen_and_hashable(self):
        assert hash(DeploymentPolicy()) == hash(DeploymentPolicy())
