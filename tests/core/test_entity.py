"""Tests for repro.core.entity."""

import pytest

from repro.core import Entity, EntityState, fresh_id


class Widget(Entity):
    TIER = "device"


class TestLifecycle:
    def test_initial_state_planned(self, sim):
        assert Widget(sim).state is EntityState.PLANNED

    def test_deploy_activates(self, sim):
        w = Widget(sim)
        w.deploy()
        assert w.alive
        assert w.deployed_at == sim.now

    def test_double_deploy_rejected(self, sim):
        w = Widget(sim)
        w.deploy()
        with pytest.raises(RuntimeError):
            w.deploy()

    def test_fail_records_time_and_reason(self, sim):
        w = Widget(sim)
        w.deploy()
        sim.run_until(10.0)
        sim.call_at(10.0, lambda: None)
        w.fail(reason="wearout")
        assert w.state is EntityState.FAILED
        assert w.ended_at == 10.0
        fails = sim.records("fail")
        assert fails[0].data["reason"] == "wearout"

    def test_retire_is_distinct_from_fail(self, sim):
        w = Widget(sim)
        w.deploy()
        w.retire(reason="upgrade")
        assert w.state is EntityState.RETIRED

    def test_fail_before_deploy_is_noop(self, sim):
        w = Widget(sim)
        w.fail()
        assert w.state is EntityState.PLANNED

    def test_fail_after_retire_is_noop(self, sim):
        w = Widget(sim)
        w.deploy()
        w.retire()
        w.fail()
        assert w.state is EntityState.RETIRED

    def test_service_life_running(self, sim):
        w = Widget(sim)
        w.deploy()
        sim.run_until(42.0)
        assert w.service_life() == 42.0

    def test_service_life_after_end(self, sim):
        w = Widget(sim)
        w.deploy()
        sim.run_until(10.0)
        w.fail()
        sim.run_until(99.0)
        assert w.service_life() == 10.0

    def test_service_life_never_deployed(self, sim):
        assert Widget(sim).service_life() is None

    def test_hooks_called(self, sim):
        calls = []

        class Hooked(Widget):
            def on_deploy(self):
                calls.append("deploy")

            def on_end(self, reason):
                calls.append(f"end:{reason}")

        h = Hooked(sim)
        h.deploy()
        h.fail(reason="x")
        assert calls == ["deploy", "end:x"]


class TestDependencies:
    def test_add_and_remove(self, sim):
        a, b = Widget(sim), Widget(sim)
        a.add_dependency(b)
        assert b in a.depends_on
        assert a in b.dependents
        a.remove_dependency(b)
        assert not a.depends_on
        assert not b.dependents

    def test_self_dependency_rejected(self, sim):
        w = Widget(sim)
        with pytest.raises(ValueError):
            w.add_dependency(w)

    def test_duplicate_dependency_ignored(self, sim):
        a, b = Widget(sim), Widget(sim)
        a.add_dependency(b)
        a.add_dependency(b)
        assert a.depends_on.count(b) == 1

    def test_effective_alive_no_deps(self, sim):
        w = Widget(sim)
        w.deploy()
        assert w.effective_alive()

    def test_effective_alive_follows_chain(self, sim):
        device, gateway, backhaul = Widget(sim), Widget(sim), Widget(sim)
        device.add_dependency(gateway)
        gateway.add_dependency(backhaul)
        for e in (device, gateway, backhaul):
            e.deploy()
        assert device.effective_alive()
        backhaul.fail()
        assert device.alive  # the hardware still works...
        assert not device.effective_alive()  # ...but it is stranded

    def test_effective_alive_any_path_suffices(self, sim):
        device, g1, g2 = Widget(sim), Widget(sim), Widget(sim)
        device.add_dependency(g1)
        device.add_dependency(g2)
        for e in (device, g1, g2):
            e.deploy()
        g1.fail()
        assert device.effective_alive()
        g2.fail()
        assert not device.effective_alive()

    def test_fresh_ids_unique(self):
        ids = {fresh_id("x") for _ in range(100)}
        assert len(ids) == 100
