"""Tests for repro.core.events."""

import pytest

from repro.core.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append(3))
        q.push(1.0, lambda: order.append(1))
        q.push(2.0, lambda: order.append(2))
        while not q.empty():
            q.pop().callback()
        assert order == [1, 2, 3]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        for index in range(10):
            q.push(5.0, lambda i=index: order.append(i))
        while not q.empty():
            q.pop().callback()
        assert order == list(range(10))

    def test_priority_beats_sequence_at_same_time(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("late"), priority=1)
        q.push(1.0, lambda: order.append("early"), priority=0)
        while not q.empty():
            q.pop().callback()
        assert order == ["early", "late"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_cancel_skips_event(self):
        q = EventQueue()
        hits = []
        event = q.push(1.0, lambda: hits.append("a"))
        q.push(2.0, lambda: hits.append("b"))
        q.cancel(event)
        while not q.empty():
            q.pop().callback()
        assert hits == ["b"]

    def test_cancel_twice_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_cancel_after_pop_keeps_accounting(self):
        # Cancelling an event that already executed must not double-
        # decrement the live count (the old code drove len() negative
        # and desynchronized empty()).
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is first
        q.cancel(first)
        assert len(q) == 1
        assert not q.empty()
        q.pop()
        assert len(q) == 0
        assert q.empty()

    def test_cancel_after_pop_then_double_cancel(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.pop()
        q.cancel(event)
        event.cancel()
        assert len(q) == 0

    def test_direct_event_cancel_updates_queue(self):
        # Event.cancel() used to bypass the queue's live count entirely.
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_len_never_negative(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.pop()
        q.cancel(event)
        q.cancel(event)
        event.cancel()
        assert len(q) == 0

    def test_cancel_after_clear_is_harmless(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.clear()
        event.cancel()
        assert len(q) == 0

    def test_peak_live_high_water_mark(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(5)]
        assert q.peak_live == 5
        for event in events[:3]:
            q.cancel(event)
        assert q.peak_live == 5
        q.push(9.0, lambda: None)
        assert q.peak_live == 5  # never got back above the old peak
        assert len(q) == 3

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        q.cancel(e1)
        assert q.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.empty()
        assert len(q) == 0

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), lambda: None)

    def test_event_repr(self):
        event = Event(time=1.5, priority=0, sequence=0, callback=lambda: None, label="x")
        assert "x" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
