"""Tests for repro.core.events."""

import pytest

from repro.core.events import COMPACTION_MIN_DEAD, Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append(3))
        q.push(1.0, lambda: order.append(1))
        q.push(2.0, lambda: order.append(2))
        while not q.empty():
            q.pop().callback()
        assert order == [1, 2, 3]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        order = []
        for index in range(10):
            q.push(5.0, lambda i=index: order.append(i))
        while not q.empty():
            q.pop().callback()
        assert order == list(range(10))

    def test_priority_beats_sequence_at_same_time(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("late"), priority=1)
        q.push(1.0, lambda: order.append("early"), priority=0)
        while not q.empty():
            q.pop().callback()
        assert order == ["early", "late"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_cancel_skips_event(self):
        q = EventQueue()
        hits = []
        event = q.push(1.0, lambda: hits.append("a"))
        q.push(2.0, lambda: hits.append("b"))
        q.cancel(event)
        while not q.empty():
            q.pop().callback()
        assert hits == ["b"]

    def test_cancel_twice_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_cancel_after_pop_keeps_accounting(self):
        # Cancelling an event that already executed must not double-
        # decrement the live count (the old code drove len() negative
        # and desynchronized empty()).
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is first
        q.cancel(first)
        assert len(q) == 1
        assert not q.empty()
        q.pop()
        assert len(q) == 0
        assert q.empty()

    def test_cancel_after_pop_then_double_cancel(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.pop()
        q.cancel(event)
        event.cancel()
        assert len(q) == 0

    def test_direct_event_cancel_updates_queue(self):
        # Event.cancel() used to bypass the queue's live count entirely.
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_len_never_negative(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.pop()
        q.cancel(event)
        q.cancel(event)
        event.cancel()
        assert len(q) == 0

    def test_cancel_after_clear_is_harmless(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.clear()
        event.cancel()
        assert len(q) == 0

    def test_peak_live_high_water_mark(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(5)]
        assert q.peak_live == 5
        for event in events[:3]:
            q.cancel(event)
        assert q.peak_live == 5
        q.push(9.0, lambda: None)
        assert q.peak_live == 5  # never got back above the old peak
        assert len(q) == 3

    def test_len_counts_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        q.cancel(e1)
        assert q.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.empty()
        assert len(q) == 0

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), lambda: None)

    def test_event_repr(self):
        event = Event(time=1.5, priority=0, sequence=0, callback=lambda: None, label="x")
        assert "x" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)


class TestPopUntil:
    def test_returns_events_in_order_up_to_horizon(self):
        q = EventQueue()
        for t in (3.0, 1.0, 2.0, 7.0):
            q.push(t, lambda: None)
        times = []
        while True:
            event = q.pop_until(5.0)
            if event is None:
                break
            times.append(event.time)
        assert times == [1.0, 2.0, 3.0]

    def test_beyond_horizon_event_stays_pending(self):
        q = EventQueue()
        q.push(10.0, lambda: None)
        assert q.pop_until(5.0) is None
        # The requeued entry must be untouched: still live, still peekable,
        # and poppable once the horizon moves past it.
        assert len(q) == 1
        assert q.peek_time() == 10.0
        event = q.pop_until(20.0)
        assert event is not None and event.time == 10.0
        assert len(q) == 0

    def test_skips_cancelled_before_horizon_check(self):
        q = EventQueue()
        early = q.push(1.0, lambda: None)
        q.push(9.0, lambda: None)
        q.cancel(early)
        assert q.pop_until(5.0) is None
        assert len(q) == 1
        assert q.dead_entries == 0  # the cancelled entry was swept out

    def test_empty_queue_returns_none(self):
        assert EventQueue().pop_until(100.0) is None


class TestCompaction:
    def test_threshold_compaction_purges_dead_entries(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(2 * COMPACTION_MIN_DEAD)]
        # Cancel just below both thresholds: nothing compacts yet.
        for event in events[: COMPACTION_MIN_DEAD - 1]:
            q.cancel(event)
        assert q.dead_entries == COMPACTION_MIN_DEAD - 1
        # One more cancel reaches the floor but dead <= live still holds.
        q.cancel(events[COMPACTION_MIN_DEAD - 1])
        assert q.dead_entries == COMPACTION_MIN_DEAD
        # Cancel past the live count: compaction fires and sweeps all dead.
        for event in events[COMPACTION_MIN_DEAD : COMPACTION_MIN_DEAD + 1]:
            q.cancel(event)
        assert q.dead_entries == 0
        assert len(q) == COMPACTION_MIN_DEAD - 1

    def test_ordering_preserved_across_compaction(self):
        q = EventQueue()
        keep = []
        cancel = []
        for i in range(4 * COMPACTION_MIN_DEAD):
            event = q.push(float(i), lambda: None)
            (keep if i % 4 == 0 else cancel).append(event)
        for event in cancel:
            q.cancel(event)
        # Compaction fired at least once mid-way, so far fewer dead
        # entries remain than were cancelled.
        assert q.dead_entries < len(cancel) // 2
        popped = []
        while not q.empty():
            popped.append(q.pop().time)
        assert popped == sorted(e.time for e in keep)

    def test_accounting_exact_under_churn(self):
        # Interleave push/cancel/pop and check len()/peak_live at every
        # step against a straightforward model.
        q = EventQueue()
        live = set()
        peak = 0
        for step in range(500):
            event = q.push(float(step % 37), lambda: None)
            live.add(event)
            # peak_live is a push-time high-water mark, so sample the
            # model's peak before this step's cancels/pops shrink it.
            peak = max(peak, len(live))
            if step % 3 == 0 and live:
                victim = min(live, key=lambda e: e.sequence)
                q.cancel(victim)
                live.discard(victim)
            if step % 5 == 0 and live:
                popped = q.pop()
                assert not popped.cancelled
                live.discard(popped)
            assert len(q) == len(live)
        assert q.peak_live == peak
        while not q.empty():
            live.discard(q.pop())
        assert not live
        assert len(q) == 0

    def test_cancel_after_pop_during_compaction_era(self):
        # A popped-then-cancelled event must not be double-counted as a
        # dead heap entry (it is no longer in the heap at all).
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(COMPACTION_MIN_DEAD)]
        popped = q.pop()
        q.cancel(popped)
        assert q.dead_entries == 0
        for event in events[1:]:
            q.cancel(event)
        # Exactly the 63 in-heap cancels count as dead — the popped one
        # does not — so the 64-entry compaction floor is not reached.
        assert q.dead_entries == COMPACTION_MIN_DEAD - 1
        assert len(q) == 0
