"""Tests for repro.core.engine."""

import pytest

from repro.core import Simulation, SimulationError, units


class TestScheduling:
    def test_call_at_runs_at_time(self, sim):
        times = []
        sim.call_at(10.0, lambda: times.append(sim.now))
        sim.run_until(20.0)
        assert times == [10.0]

    def test_call_in_is_relative(self, sim):
        sim.run_until(5.0)
        times = []
        sim.call_in(3.0, lambda: times.append(sim.now))
        sim.run_until(20.0)
        assert times == [8.0]

    def test_past_scheduling_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_clock_lands_on_end_time(self, sim):
        sim.call_at(3.0, lambda: None)
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_events_beyond_end_stay_queued(self, sim):
        hits = []
        sim.call_at(50.0, lambda: hits.append(1))
        sim.run_until(10.0)
        assert hits == []
        sim.run_until(60.0)
        assert hits == [1]

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_nested_scheduling_inside_event(self, sim):
        times = []

        def first():
            sim.call_in(1.0, lambda: times.append(sim.now))

        sim.call_at(2.0, first)
        sim.run_until(10.0)
        assert times == [3.0]

    def test_stop_halts_run(self, sim):
        hits = []
        sim.call_at(1.0, lambda: (hits.append(1), sim.stop()))
        sim.call_at(2.0, lambda: hits.append(2))
        sim.run_until(10.0)
        assert hits == [1]
        assert sim.now == 1.0  # clock frozen at the stop point

    def test_max_events_guard(self, sim):
        def loop():
            sim.call_in(0.0, loop)

        sim.call_at(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_executed_events_counter(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda: None)
        sim.run_until(10.0)
        assert sim.executed_events == 3


class TestPeriodicTask:
    def test_fires_on_interval(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_custom_start(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start=5.0)
        sim.run_until(30.0)
        assert times == [5.0, 15.0, 25.0]

    def test_until_bound(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), until=25.0)
        sim.run_until(100.0)
        assert times == [10.0, 20.0]

    def test_stop_cancels_future_firings(self, sim):
        times = []
        task = sim.every(10.0, lambda: times.append(sim.now))
        sim.call_at(25.0, task.stop)
        sim.run_until(100.0)
        assert times == [10.0, 20.0]
        assert not task.active

    def test_fired_counter(self, sim):
        task = sim.every(1.0, lambda: None)
        sim.run_until(5.5)
        assert task.fired == 5

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_stop_from_inside_callback(self, sim):
        task_holder = {}
        times = []

        def fire():
            times.append(sim.now)
            if len(times) == 2:
                task_holder["task"].stop()

        task_holder["task"] = sim.every(1.0, fire)
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_stop_mid_run_leaves_no_live_count_drift(self, sim):
        # A stopped task cancels its pending reschedule; the queue's
        # live/dead accounting must come out exactly even so a later
        # drain sees a truly empty queue.
        tasks = [sim.every(1.0, lambda: None) for _ in range(5)]
        sim.call_at(10.5, lambda: [t.stop() for t in tasks[:3]])
        sim.run_until(20.0)
        assert sum(1 for t in tasks if t.active) == 2
        # Two live reschedules (one per surviving task) remain pending.
        assert len(sim.events) == 2
        sim.run_until(21.0)
        assert len(sim.events) == 2
        for task in tasks:
            task.stop()
        assert len(sim.events) == 0
        assert sim.events.empty()
        sim.run_until(30.0)
        assert len(sim.events) == 0

    def test_stop_churn_storm_accounting_exact(self, sim):
        # Start/stop many periodic tasks on different phases and check
        # the queue never drifts: after everything stops, zero live
        # events and no stale execution.
        fired = []
        tasks = []

        def launch(interval):
            tasks.append(sim.every(interval, lambda: fired.append(sim.now)))

        for interval in (1.0, 2.0, 3.0, 5.0, 7.0):
            launch(interval)
        sim.call_at(8.0, lambda: [t.stop() for t in tasks[::2]])
        sim.call_at(16.0, lambda: [t.stop() for t in tasks])
        sim.run_until(50.0)
        assert len(sim.events) == 0
        assert sim.events.empty()
        assert all(not t.active for t in tasks)
        assert max(fired) <= 16.0


class TestRecording:
    def test_record_and_filter(self, sim):
        sim.call_at(1.0, lambda: sim.record("alpha", "one", value=1))
        sim.call_at(2.0, lambda: sim.record("beta", "two"))
        sim.run_until(5.0)
        alpha = sim.records("alpha")
        assert len(alpha) == 1
        assert alpha[0].time == 1.0
        assert alpha[0].data["value"] == 1

    def test_rng_shorthand(self, sim):
        assert sim.rng("x") is sim.streams.get("x")

    def test_long_horizon_clock_precision(self):
        # 100 years in seconds is ~3.2e9; doubles must resolve seconds.
        sim = Simulation()
        hits = []
        sim.call_at(units.years(100.0), lambda: hits.append(sim.now))
        sim.run_until(units.years(100.0))
        assert hits and hits[0] == units.years(100.0)

    def test_repr(self, sim):
        assert "Simulation(" in repr(sim)
