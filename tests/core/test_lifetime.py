"""Tests for repro.core.lifetime."""

import numpy as np
import pytest

from repro.core import (
    Cohort,
    FleetTimeline,
    en_masse_fleet,
    pipelined_fleet,
    replacement_rate,
    summarize,
    units,
)


def constant_sampler(value):
    return lambda n: np.full(n, value)


class TestCohort:
    def test_alive_before_deployment_zero(self):
        c = Cohort(deployed_at=10.0, lifetimes=(5.0, 5.0))
        assert c.alive_at(9.0) == 0

    def test_alive_counts_survivors(self):
        c = Cohort(deployed_at=0.0, lifetimes=(1.0, 2.0, 3.0))
        assert c.alive_at(0.0) == 3
        assert c.alive_at(1.5) == 2
        assert c.alive_at(2.5) == 1
        assert c.alive_at(3.5) == 0

    def test_size(self):
        assert Cohort(0.0, (1.0, 2.0)).size == 2


class TestFleetTimeline:
    def test_coverage_basic(self):
        tl = FleetTimeline(nominal_size=10)
        tl.add_cohort(Cohort(0.0, tuple([100.0] * 5)))
        assert tl.coverage_at(1.0) == 0.5

    def test_cohorts_sorted_on_insert(self):
        tl = FleetTimeline(nominal_size=1)
        tl.add_cohort(Cohort(5.0, (1.0,)))
        tl.add_cohort(Cohort(1.0, (1.0,)))
        assert [c.deployed_at for c in tl.cohorts] == [1.0, 5.0]

    def test_invalid_nominal_size(self):
        with pytest.raises(ValueError):
            FleetTimeline(nominal_size=0)

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            FleetTimeline(nominal_size=1, coverage_floor=0.0)

    def test_system_lifetime_en_masse_equals_wearout(self):
        # All devices last exactly 10 years: coverage collapses then.
        tl = en_masse_fleet(100, constant_sampler(units.years(10.0)))
        life = tl.system_lifetime(units.years(50.0), step=units.years(0.25))
        assert units.as_years(life) == pytest.approx(10.0, abs=0.3)

    def test_system_lifetime_outlives_horizon_when_replaced(self):
        tl = pipelined_fleet(
            nominal_size=100,
            lifetime_sampler=constant_sampler(units.years(10.0)),
            refresh_interval=units.years(8.0),
            horizon=units.years(100.0),
            batches=8,
        )
        life = tl.system_lifetime(units.years(100.0), step=units.years(0.5))
        assert units.as_years(life) == 100.0

    def test_never_covered_returns_zero(self):
        tl = FleetTimeline(nominal_size=100, coverage_floor=0.9)
        tl.add_cohort(Cohort(0.0, tuple([units.years(1.0)] * 10)))  # 10 % max
        assert tl.system_lifetime(units.years(5.0)) == 0.0


class TestPipelinedFleet:
    def test_steady_state_coverage_near_one(self, rng):
        sampler = lambda n: rng.weibull(4.0, n) * units.years(12.0)
        tl = pipelined_fleet(
            nominal_size=400,
            lifetime_sampler=sampler,
            refresh_interval=units.years(8.0),
            horizon=units.years(60.0),
            batches=8,
        )
        # After build-out, coverage should hover near 1, never above ~1.
        times, coverage = tl.coverage_series(units.years(60.0), step=units.years(1.0))
        steady = coverage[times > units.years(10.0)]
        assert steady.mean() > 0.8
        assert steady.max() <= 1.01

    def test_abandonment_decays_fleet(self, rng):
        sampler = lambda n: rng.weibull(4.0, n) * units.years(12.0)
        tl = pipelined_fleet(
            nominal_size=200,
            lifetime_sampler=sampler,
            refresh_interval=units.years(8.0),
            horizon=units.years(80.0),
            batches=8,
            stop_replacing_after=units.years(20.0),
        )
        life = tl.system_lifetime(units.years(80.0), step=units.years(0.5))
        assert units.years(20.0) < life < units.years(60.0)

    def test_batches_stagger_deployments(self):
        tl = pipelined_fleet(
            nominal_size=80,
            lifetime_sampler=constant_sampler(units.years(5.0)),
            refresh_interval=units.years(8.0),
            horizon=units.years(8.0),
            batches=4,
        )
        starts = sorted({c.deployed_at for c in tl.cohorts})
        assert len(starts) == 4
        gaps = np.diff(starts)
        assert np.allclose(gaps, units.years(2.0))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            pipelined_fleet(10, constant_sampler(1.0), 0.0, 10.0)
        with pytest.raises(ValueError):
            pipelined_fleet(10, constant_sampler(1.0), 1.0, 10.0, batches=0)


class TestSummaries:
    def test_replacement_rate_zero_for_en_masse(self):
        tl = en_masse_fleet(50, constant_sampler(units.years(5.0)))
        assert replacement_rate(tl, units.years(10.0)) == 0.0

    def test_replacement_rate_counts_later_cohorts(self):
        tl = FleetTimeline(nominal_size=10)
        tl.add_cohort(Cohort(0.0, tuple([1.0] * 10)))
        tl.add_cohort(Cohort(units.years(1.0), tuple([1.0] * 10)))
        assert replacement_rate(tl, units.years(2.0)) == pytest.approx(5.0)

    def test_summarize_fields(self):
        tl = en_masse_fleet(10, constant_sampler(units.years(20.0)))
        row = summarize("x", tl, units.years(10.0), step=units.years(1.0))
        assert row.strategy == "x"
        assert row.system_lifetime_years == 10.0  # outlived window
        assert row.mean_coverage == pytest.approx(1.0)
        assert row.replacements_per_year == 0.0
