"""Tests for repro.net.helium."""

import pytest

from repro.core import Simulation, units
from repro.net import (
    USD_PER_CREDIT,
    ChurnModel,
    CloudEndpoint,
    DataCreditWallet,
    HeliumNetwork,
    credits_for_schedule,
)


class TestDataCreditWallet:
    def test_provision_cost(self):
        wallet = DataCreditWallet()
        cost = wallet.provision(500_000)
        assert cost == pytest.approx(5.0)  # the paper's $5 wallet
        assert wallet.balance == 500_000

    def test_debit_and_refusal(self):
        wallet = DataCreditWallet()
        wallet.provision(2)
        assert wallet.debit(1)
        assert wallet.debit(1)
        assert not wallet.debit(1)
        assert wallet.refusals == 1
        assert wallet.spent == 2

    def test_fixed_price_property(self):
        # Price per credit never changes with volume (§4.4).
        small = DataCreditWallet().provision(100) / 100
        large = DataCreditWallet().provision(10_000_000) / 10_000_000
        assert small == large == USD_PER_CREDIT

    def test_years_remaining(self):
        wallet = DataCreditWallet()
        wallet.provision(438_300)  # hourly for 50 Julian years
        assert wallet.years_remaining(units.HOUR) == pytest.approx(50.0, rel=0.01)

    def test_validation(self):
        wallet = DataCreditWallet()
        with pytest.raises(ValueError):
            wallet.provision(0)
        with pytest.raises(ValueError):
            wallet.debit(0)


class TestCreditsForSchedule:
    def test_hourly_50_years(self):
        assert credits_for_schedule(units.HOUR, units.years(50.0)) == 438_300

    def test_bigger_packets_cost_more(self):
        base = credits_for_schedule(units.HOUR, units.years(1.0))
        double = credits_for_schedule(units.HOUR, units.years(1.0), credits_per_packet=2)
        assert double == 2 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            credits_for_schedule(0.0, 1.0)
        with pytest.raises(ValueError):
            credits_for_schedule(1.0, 1.0, credits_per_packet=0)


class TestChurnModel:
    def test_tenures_positive_and_median(self, rng):
        churn = ChurnModel(median_tenure_years=3.0)
        draws = churn.sample_tenure(rng, 4000)
        import numpy as np

        assert (draws > 0).all()
        assert np.median(draws) == pytest.approx(units.years(3.0), rel=0.1)

    def test_arrival_decay(self):
        churn = ChurnModel(halflife_years=8.0)
        assert churn.arrival_rate_at(units.years(8.0), 10.0) == pytest.approx(5.0)
        steady = ChurnModel(halflife_years=None)
        assert steady.arrival_rate_at(units.years(100.0), 10.0) == 10.0


class TestHeliumNetwork:
    def _network(self, seed=11, **kwargs):
        sim = Simulation(seed=seed)
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        defaults = dict(initial_hotspots=30, arrivals_per_year=10.0)
        defaults.update(kwargs)
        return sim, cloud, HeliumNetwork(sim, cloud, **defaults)

    def test_initial_population(self):
        sim, cloud, network = self._network()
        assert len(network.live_hotspots()) == 30

    def test_churn_and_arrivals_balance(self):
        # ~10 arrivals/yr vs median 3-yr tenure: population should settle
        # near arrivals x tenure ~ 30-40, not die or explode.
        sim, cloud, network = self._network()
        sim.run_until(units.years(15.0))
        live = len(network.live_hotspots())
        assert 10 <= live <= 90
        assert len(network.hotspots) > 30  # arrivals happened

    def test_collapse_with_halflife(self):
        sim, cloud, network = self._network(
            churn=ChurnModel(median_tenure_years=3.0, halflife_years=4.0)
        )
        sim.run_until(units.years(40.0))
        assert len(network.live_hotspots()) <= 3

    def test_hotspots_share_as_backhauls(self):
        sim, cloud, network = self._network()
        asns = {h.asn for h in network.hotspots}
        assert len(asns) < len(network.hotspots)  # concentration exists
        assert set(network.backhauls) == asns

    def test_fail_as_strands_hotspots(self):
        sim, cloud, network = self._network()
        target_asn = network.hotspots[0].asn
        stranded = network.fail_as(target_asn)
        assert stranded >= 1
        assert not network.backhauls[target_asn].alive
        # Hotspots on that AS are alive but cut off.
        victim = network.hotspots[0]
        assert victim.alive
        assert not victim.effective_alive()

    def test_fail_unknown_as(self):
        sim, cloud, network = self._network()
        assert network.fail_as(99_999_999) == 0

    def test_wallet_threaded_to_hotspots(self):
        wallet = DataCreditWallet()
        wallet.provision(100)
        sim, cloud, network = self._network(wallet=wallet)
        assert all(h.wallet is wallet for h in network.hotspots)

    def test_new_backhaul_after_as_failure(self):
        sim, cloud, network = self._network()
        target_asn = network.hotspots[0].asn
        network.fail_as(target_asn)
        # A new hotspot assigned to the same AS gets a fresh backhaul.
        fresh = network._backhaul_for(target_asn)
        assert fresh.alive
