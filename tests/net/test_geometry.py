"""Tests for repro.net.geometry."""

import math

import pytest

from repro.net import Position, centroid, grid_positions, uniform_positions


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_distance_symmetric(self):
        a, b = Position(1, 2), Position(-3, 7)
        assert a.distance_to(b) == b.distance_to(a)

    def test_iterable(self):
        x, y = Position(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Position(0, 0).x = 5


class TestGridPositions:
    def test_count(self):
        assert len(grid_positions(17)) == 17

    def test_spacing(self):
        positions = grid_positions(4, spacing_m=10.0)
        assert positions[1].x - positions[0].x == 10.0

    def test_near_square(self):
        positions = grid_positions(9, spacing_m=1.0)
        max_x = max(p.x for p in positions)
        max_y = max(p.y for p in positions)
        assert max_x == max_y == 2.0

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            grid_positions(4, jitter_m=1.0)

    def test_jitter_bounded(self, rng):
        positions = grid_positions(100, spacing_m=50.0, jitter_m=5.0, rng=rng)
        clean = grid_positions(100, spacing_m=50.0)
        for p, q in zip(positions, clean):
            assert abs(p.x - q.x) <= 5.0
            assert abs(p.y - q.y) <= 5.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_positions(0)
        with pytest.raises(ValueError):
            grid_positions(1, spacing_m=0.0)


class TestUniformPositions:
    def test_within_extent(self, rng):
        positions = uniform_positions(200, 1000.0, rng)
        assert all(0.0 <= p.x <= 1000.0 and 0.0 <= p.y <= 1000.0 for p in positions)

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            uniform_positions(0, 10.0, rng)
        with pytest.raises(ValueError):
            uniform_positions(1, 0.0, rng)


class TestCentroid:
    def test_mean(self):
        c = centroid([Position(0, 0), Position(2, 4)])
        assert (c.x, c.y) == (1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])
