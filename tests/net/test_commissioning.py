"""Tests for repro.net.commissioning (§3.2 replacement protocol)."""

import numpy as np
import pytest

from repro.core import Entity
from repro.core.policy import GatewayRole
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    CommissioningProfile,
    CommissioningStep,
    OwnedGateway,
    commission_replacement,
)
from repro.radio import ieee802154


class Dev(Entity):
    TIER = "device"


def gateway_pair(sim, role=GatewayRole.ROUTER_ONLY, n_devices=5):
    cloud = CloudEndpoint(sim)
    cloud.deploy()
    backhaul = CampusBackhaul(sim)
    backhaul.add_dependency(cloud)
    backhaul.deploy()
    outgoing = OwnedGateway(
        sim,
        spec=ieee802154.default_spec(),
        path_loss=ieee802154.urban_path_loss(),
        role=role,
    )
    outgoing.add_dependency(backhaul)
    outgoing.deploy()
    incoming = OwnedGateway(
        sim,
        spec=ieee802154.default_spec(),
        path_loss=ieee802154.urban_path_loss(),
        role=role,
    )
    incoming.add_dependency(backhaul)
    incoming.deploy()
    devices = [Dev(sim) for _ in range(n_devices)]
    for device in devices:
        device.add_dependency(outgoing)
        device.deploy()
    return outgoing, incoming, devices


class TestRouterOnly:
    def test_succeeds_and_migrates(self, sim, rng):
        outgoing, incoming, devices = gateway_pair(sim)
        report = commission_replacement(outgoing, incoming, rng)
        assert report.succeeded
        assert report.migrated_devices == 5
        assert report.stranded_devices == 0
        assert all(incoming in d.depends_on for d in devices)

    def test_no_key_escrow_step(self, sim, rng):
        outgoing, incoming, __ = gateway_pair(sim)
        report = commission_replacement(outgoing, incoming, rng)
        steps = {s.step for s in report.steps}
        assert CommissioningStep.KEY_ESCROW not in steps

    def test_labor_independent_of_fleet_size(self, sim, rng):
        out_small, in_small, __ = gateway_pair(sim, n_devices=2)
        small = commission_replacement(out_small, in_small, rng)
        out_large, in_large, __ = gateway_pair(sim, n_devices=50)
        large = commission_replacement(out_large, in_large, rng)
        assert large.labor_hours == pytest.approx(small.labor_hours)


class TestStateful:
    def test_escrow_step_present_and_scales(self, sim):
        rng = np.random.default_rng(0)
        profile = CommissioningProfile(ttp_unavailable_probability=0.0)
        out_small, in_small, __ = gateway_pair(
            sim, role=GatewayRole.STATEFUL_CONTROLLER, n_devices=2
        )
        small = commission_replacement(out_small, in_small, rng, profile)
        out_large, in_large, __ = gateway_pair(
            sim, role=GatewayRole.STATEFUL_CONTROLLER, n_devices=40
        )
        large = commission_replacement(out_large, in_large, rng, profile)
        assert CommissioningStep.KEY_ESCROW in {s.step for s in small.steps}
        assert large.labor_hours > small.labor_hours
        assert small.used_trusted_third_party
        assert large.migrated_devices == 40

    def test_ttp_unavailable_strands_fleet(self, sim):
        rng = np.random.default_rng(0)
        profile = CommissioningProfile(ttp_unavailable_probability=1.0)
        outgoing, incoming, devices = gateway_pair(
            sim, role=GatewayRole.STATEFUL_CONTROLLER, n_devices=8
        )
        report = commission_replacement(outgoing, incoming, rng, profile)
        assert not report.succeeded
        assert not report.used_trusted_third_party
        assert report.stranded_devices == 8
        assert report.migrated_devices == 0
        assert all(outgoing in d.depends_on for d in devices)

    def test_stateful_router_labor_gap(self, sim):
        # The mechanism behind DeploymentPolicy.gateway_swap_cost_factor:
        # stateful replacement labor grows with attachments.
        rng = np.random.default_rng(0)
        profile = CommissioningProfile(ttp_unavailable_probability=0.0)
        out_router, in_router, __ = gateway_pair(sim, n_devices=40)
        router = commission_replacement(out_router, in_router, rng, profile)
        out_state, in_state, __ = gateway_pair(
            sim, role=GatewayRole.STATEFUL_CONTROLLER, n_devices=40
        )
        stateful = commission_replacement(out_state, in_state, rng, profile)
        assert stateful.labor_hours > 1.5 * router.labor_hours


class TestRehomePolicy:
    def test_rehome_disallowed_strands(self, sim, rng):
        outgoing, incoming, devices = gateway_pair(sim)
        report = commission_replacement(
            outgoing, incoming, rng, rehome_allowed=False
        )
        assert report.stranded_devices == 5
        assert not report.succeeded
