"""Tests for repro.net.cohort: the batched path must be bit-identical.

The cohort machinery's entire claim is that vectorising the duty cycle
changes *nothing* observable: array draws consume RNG streams exactly
like repeated scalar draws, vectorised sources produce the same floats
as their scalar ``power_at``, and :class:`CohortPower` walks the same
IEEE-754 trajectory as one scalar ``HarvestingSystem`` per member.
These tests pin each layer of that claim independently, so a future
numpy or refactor regression is caught at the layer that broke.
"""

import numpy as np
import pytest

from repro.core import units
from repro.energy.budget import TaskProfile
from repro.energy.harvester import HarvestingSystem
from repro.energy.sources import (
    CathodicProtectionSource,
    SolarSource,
    ThermalGradientSource,
    VibrationSource,
)
from repro.energy.storage import Capacitor
from repro.net.cohort import CohortPower

SOURCES = [
    CathodicProtectionSource(),
    SolarSource(),
    VibrationSource(),
    ThermalGradientSource(),
]


class TestArrayDrawsMatchScalarDraws:
    """The numpy contract everything else builds on: ``dist(size=n)``
    consumes the generator exactly like ``n`` scalar ``dist()`` calls."""

    def test_standard_normal(self):
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        batch = a.standard_normal(64)
        scalars = [b.standard_normal() for _ in range(64)]
        assert batch.tolist() == scalars

    def test_random(self):
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        batch = a.random(64)
        scalars = [b.random() for _ in range(64)]
        assert batch.tolist() == scalars

    def test_normal_with_loc_scale(self):
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        batch = a.normal(loc=1.0, scale=0.05, size=64)
        scalars = [b.normal(loc=1.0, scale=0.05) for _ in range(64)]
        assert batch.tolist() == scalars


class TestPowerAtMany:
    @pytest.mark.parametrize("source", SOURCES, ids=lambda s: type(s).__name__)
    def test_matches_sequential_scalar_calls(self, source):
        n = 32
        times = [
            0.0,
            units.HOUR * 9.0,       # mid-morning (solar daylight)
            units.DAY * 5.9,        # weekday/weekend boundary region
            units.days(200.0) + units.HOUR * 12.0,
            units.years(30.0) + units.HOUR * 13.0,
        ]
        for t in times:
            a, b = np.random.default_rng(123), np.random.default_rng(123)
            batch = source.power_at_many(t, a, n)
            scalars = [source.power_at(t, b) for _ in range(n)]
            assert batch.tolist() == scalars
            # Both paths must leave the generators in the same state.
            assert a.random() == b.random()

    def test_solar_night_draws_nothing(self):
        source = SolarSource()
        rng = np.random.default_rng(5)
        state_before = rng.bit_generator.state
        out = source.power_at_many(0.0, rng, 16)  # midnight
        assert out.tolist() == [0.0] * 16
        assert rng.bit_generator.state == state_before

    @pytest.mark.parametrize("source", SOURCES, ids=lambda s: type(s).__name__)
    def test_rejects_negative_time(self, source):
        with pytest.raises(ValueError):
            source.power_at_many(-1.0, np.random.default_rng(0), 4)


def make_scalar_members(n, source, profile, capacity_j, initial_j):
    return [
        HarvestingSystem(
            source=source,
            storage=Capacitor(capacity_j=capacity_j, stored_j=initial_j),
            profile=profile,
        )
        for _ in range(n)
    ]


class TestCohortPowerEquivalence:
    """CohortPower vs one HarvestingSystem per member, exact floats.

    The scalar reference consumes one shared generator in member order,
    exactly as per-entity devices sharing the "energy" stream do.
    """

    def _compare(self, cohort, members, active):
        stored = [members[i].storage.stored_j for i in active]
        assert cohort.stored_j[active].tolist() == stored
        flags = [members[i].browned_out for i in active]
        assert cohort.in_brownout[active].tolist() == flags
        counts = [members[i].brownouts for i in active]
        assert cohort.brownout_counts[active].tolist() == counts

    @pytest.mark.parametrize(
        "source",
        [SolarSource(), VibrationSource(), CathodicProtectionSource()],
        ids=lambda s: type(s).__name__,
    )
    def test_step_and_transmit_trajectory(self, source):
        n = 12
        profile = TaskProfile()
        capacity = 0.5
        initial = 0.25
        airtime = 1.4e-3
        members = make_scalar_members(n, source, profile, capacity, initial)
        cohort = CohortPower(
            source=source,
            count=n,
            capacity_j=capacity,
            initial_stored_j=initial,
            profile=profile,
        )
        active = np.arange(n)
        rng_scalar = np.random.default_rng(42)
        rng_batch = np.random.default_rng(42)
        t = 0.0
        for _ in range(40):
            dt = units.HOUR * 6.0
            t += dt
            for i in active:
                members[i].step(dt, rng_scalar)
            cohort.step_many(dt, rng_batch, active)
            oks = [members[i].try_transmit(airtime) for i in active]
            batch_ok = cohort.try_transmit_many(airtime, active)
            assert batch_ok.tolist() == oks
            self._compare(cohort, members, active)

    def test_brownout_and_recovery_cycle(self):
        # A tiny capacitor with a real sleep floor browns out nightly on
        # solar and recovers each day — both transitions must match.
        source = SolarSource(cloud_fraction=0.5)
        profile = TaskProfile(sleep_power_w=2e-5)
        capacity = 0.05
        n = 8
        members = make_scalar_members(n, source, profile, capacity, capacity)
        cohort = CohortPower(
            source=source,
            count=n,
            capacity_j=capacity,
            initial_stored_j=capacity,
            profile=profile,
        )
        active = np.arange(n)
        rng_scalar = np.random.default_rng(9)
        rng_batch = np.random.default_rng(9)
        for step in range(48):  # 12 days of 6-hour steps
            dt = units.HOUR * 6.0
            for i in active:
                members[i].step(dt, rng_scalar)
            cohort.step_many(dt, rng_batch, active)
            self._compare(cohort, members, active)
        assert cohort.brownouts > 0  # the cycle actually browned out

    def test_dead_members_frozen(self):
        source = CathodicProtectionSource()
        profile = TaskProfile()
        n = 6
        members = make_scalar_members(n, source, profile, 0.5, 0.3)
        cohort = CohortPower(
            source=source, count=n, capacity_j=0.5, initial_stored_j=0.3,
            profile=profile,
        )
        rng_scalar = np.random.default_rng(3)
        rng_batch = np.random.default_rng(3)
        all_active = np.arange(n)
        for i in all_active:
            members[i].step(units.HOUR, rng_scalar)
        cohort.step_many(units.HOUR, rng_batch, all_active)
        # Members 2 and 4 die; the survivors keep stepping.
        active = np.array([0, 1, 3, 5])
        frozen = {2: cohort.stored_j[2], 4: cohort.stored_j[4]}
        for _ in range(5):
            for i in active:
                members[i].step(units.HOUR, rng_scalar)
            cohort.step_many(units.HOUR, rng_batch, active)
            self._compare(cohort, members, active)
        assert cohort.stored_j[2] == frozen[2]
        assert cohort.stored_j[4] == frozen[4]

    def test_zero_dt_and_empty_active_are_noops(self):
        cohort = CohortPower(
            source=CathodicProtectionSource(), count=3, capacity_j=0.5,
            initial_stored_j=0.2,
        )
        rng = np.random.default_rng(1)
        state = rng.bit_generator.state
        cohort.step_many(0.0, rng, np.arange(3))
        cohort.step_many(units.HOUR, rng, np.array([], dtype=int))
        assert rng.bit_generator.state == state
        assert cohort.stored_j.tolist() == [0.2] * 3

    def test_validation(self):
        source = CathodicProtectionSource()
        with pytest.raises(ValueError):
            CohortPower(source=source, count=0)
        with pytest.raises(ValueError):
            CohortPower(source=source, count=1, capacity_j=0.0)
        with pytest.raises(ValueError):
            CohortPower(source=source, count=1, initial_stored_j=1.0, capacity_j=0.5)
        with pytest.raises(ValueError):
            CohortPower(source=source, count=1, brownout_threshold=1.0)
        with pytest.raises(ValueError):
            CohortPower(source=source, count=1).step_many(
                -1.0, np.random.default_rng(0), np.arange(1)
            )


class TestDeviceCohortConstruction:
    def test_rejects_mismatched_power(self, sim):
        from repro.net.cohort import DeviceCohort
        from repro.net.geometry import Position
        from repro.radio import ieee802154

        power = CohortPower(source=CathodicProtectionSource(), count=3)
        with pytest.raises(ValueError):
            DeviceCohort(
                sim,
                technology="802.15.4",
                spec=ieee802154.default_spec(),
                airtime_s=ieee802154.airtime_s(24),
                report_interval=units.HOUR,
                positions=[Position(0, 0), Position(1, 0)],
                power=power,
            )

    def test_lifetimes_drawn_like_failure_processes(self, sim):
        """Cohort death times consume "device-hw" exactly as per-device
        FailureProcess arming does — one scalar sample per member."""
        from repro.core import Simulation
        from repro.net.cohort import DeviceCohort
        from repro.net.geometry import Position
        from repro.radio import ieee802154
        from repro.reliability.components import energy_harvesting_device

        model = energy_harvesting_device()
        n = 5
        cohort = DeviceCohort(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.HOUR,
            positions=[Position(float(i), 0.0) for i in range(n)],
            lifetime_model=model,
        )
        cohort.deploy()
        reference = Simulation(seed=42)  # same seed as the sim fixture
        rng = reference.rng("device-hw")
        expected = [float(model.sample(rng, 1)[0]) for _ in range(n)]
        assert cohort.death_at.tolist() == expected
