"""Tests for repro.net.backhaul."""

import pytest

from repro.core import units
from repro.net import (
    CampusBackhaul,
    CellularBackhaul,
    FiberBackhaul,
    OpaqueBackhaul,
    OutageModel,
)


class TestOutageModel:
    def test_availability(self):
        model = OutageModel(mtbf=99.0, mttr=1.0)
        assert model.availability == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageModel(mtbf=0.0)
        with pytest.raises(ValueError):
            OutageModel(mtbf=1.0, mttr=0.0)


class TestBackhaulOutages:
    def test_outages_occur_and_recover(self, sim):
        backhaul = CampusBackhaul(sim)
        backhaul.deploy()
        sim.run_until(units.years(20.0))
        assert backhaul.outages >= 1
        assert backhaul.downtime_s > 0.0

    def test_long_run_availability_matches_model(self, sim):
        backhaul = FiberBackhaul(sim)
        backhaul.deploy()
        horizon = units.years(200.0)
        sim.run_until(horizon)
        measured = 1.0 - backhaul.downtime_s / horizon
        assert measured == pytest.approx(backhaul.outage_model.availability, abs=0.005)

    def test_carries_traffic_reflects_up_state(self, sim):
        backhaul = CampusBackhaul(sim)
        backhaul.deploy()
        assert backhaul.carries_traffic()
        backhaul.up = False
        assert not backhaul.carries_traffic()

    def test_dead_backhaul_carries_nothing(self, sim):
        backhaul = CampusBackhaul(sim)
        backhaul.deploy()
        backhaul.fail()
        assert not backhaul.carries_traffic()

    def test_no_more_outages_after_death(self, sim):
        backhaul = CampusBackhaul(sim)
        backhaul.deploy()
        sim.run_until(units.years(5.0))
        backhaul.fail()
        count = backhaul.outages
        sim.run_until(units.years(50.0))
        assert backhaul.outages == count


class TestCellularSunset:
    def test_sunset_retires_backhaul(self, sim):
        cell = CellularBackhaul(sim, generation="3G", sunset_at=units.years(20.0))
        cell.deploy()
        sim.run_until(units.years(19.0))
        assert cell.alive
        sim.run_until(units.years(21.0))
        assert not cell.alive
        assert cell.state.value == "retired"

    def test_sunset_recorded(self, sim):
        cell = CellularBackhaul(sim, generation="2G", sunset_at=units.years(5.0))
        cell.deploy()
        sim.run_until(units.years(6.0))
        sunsets = sim.records("sunset")
        assert len(sunsets) == 1
        assert sunsets[0].data["generation"] == "2G"

    def test_no_sunset_lives_on(self, sim):
        cell = CellularBackhaul(sim, sunset_at=None)
        cell.deploy()
        sim.run_until(units.years(60.0))
        assert cell.alive

    def test_fiber_has_no_sunset(self, sim):
        fiber = FiberBackhaul(sim)
        fiber.deploy()
        sim.run_until(units.years(80.0))
        assert fiber.alive


class TestEconomicsHooks:
    def test_annual_costs(self, sim):
        assert FiberBackhaul(sim).annual_cost_usd() == 1200.0
        assert CellularBackhaul(sim).annual_cost_usd() == 240.0
        assert CampusBackhaul(sim).annual_cost_usd() == 0.0

    def test_opaque_asn_tag(self, sim):
        backhaul = OpaqueBackhaul(sim, asn=7922)
        assert backhaul.tags["asn"] == "7922"

    def test_reliability_ordering(self, sim):
        # Campus/fiber should be more available than a residential ISP.
        fiber = FiberBackhaul(sim)
        opaque = OpaqueBackhaul(sim)
        assert (
            fiber.outage_model.availability > opaque.outage_model.availability
        )
