"""Tests for repro.net.trust (longitudinal trust, §4.1)."""

import numpy as np
import pytest

from repro.core import units
from repro.net import (
    SCHEMES,
    SigningScheme,
    TrustLevel,
    TrustPolicy,
    TrustRegistry,
    trust_horizon,
)


def registry(leak_rate=0.0, seed=3, **policy_kwargs):
    policy = TrustPolicy(key_leak_rate_per_year=leak_rate, **policy_kwargs)
    return TrustRegistry(policy=policy, rng=np.random.default_rng(seed))


class TestRegistryRandomness:
    def test_unseeded_registry_rejected(self):
        # The old silent default_rng(0) fallback made every unseeded
        # registry replay identical break/leak times.
        with pytest.raises(ValueError):
            TrustRegistry()

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(ValueError):
            TrustRegistry(rng=np.random.default_rng(1), seed=1)

    def test_seed_derives_reproducible_stream(self):
        a = TrustRegistry(seed=7)
        b = TrustRegistry(seed=7)
        ra = a.commission("dev-1", "ed25519")
        rb = b.commission("dev-1", "ed25519")
        assert ra.scheme_breaks_at == rb.scheme_breaks_at

    def test_distinct_seeds_diverge(self):
        a = TrustRegistry(seed=7).commission("dev-1", "ed25519")
        b = TrustRegistry(seed=8).commission("dev-1", "ed25519")
        assert a.scheme_breaks_at != b.scheme_breaks_at


class TestSigningScheme:
    def test_break_times_positive_and_median(self, rng):
        scheme = SigningScheme("x", break_median_years=60.0, break_sigma=0.5)
        draws = [scheme.sample_break_time(rng) for _ in range(2000)]
        assert min(draws) > 0.0
        assert np.median(draws) == pytest.approx(units.years(60.0), rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SigningScheme("x", cryptoperiod_years=0.0)
        with pytest.raises(ValueError):
            SigningScheme("x", break_median_years=0.0)

    def test_catalogue_sanity(self):
        for scheme in SCHEMES.values():
            assert scheme.break_median_years > scheme.cryptoperiod_years


class TestTrustLifecycle:
    def test_fresh_device_trusted(self):
        reg = registry()
        reg.commission("dev-1", "ed25519", at=0.0)
        assert reg.level("dev-1", units.years(5.0)) is TrustLevel.TRUSTED

    def test_unknown_device_untrusted(self):
        assert registry().level("ghost", 0.0) is TrustLevel.UNTRUSTED

    def test_degraded_after_cryptoperiod(self):
        reg = registry(degraded_acceptance_years=15.0)
        record = reg.commission("dev-1", "ed25519", at=0.0)
        record_break = record.scheme_breaks_at
        t = units.years(SCHEMES["ed25519"].cryptoperiod_years + 1.0)
        if t < record_break:
            assert reg.level("dev-1", t) is TrustLevel.DEGRADED

    def test_untrusted_after_degraded_window(self):
        reg = registry(degraded_acceptance_years=5.0)
        reg.commission("dev-1", "ed25519", at=0.0)
        t = units.years(SCHEMES["ed25519"].cryptoperiod_years + 6.0)
        assert reg.level("dev-1", t) is TrustLevel.UNTRUSTED

    def test_scheme_break_forces_untrusted(self):
        reg = registry()
        record = reg.commission("dev-1", "ecdsa-p256", at=0.0)
        assert (
            record.level_at(record.scheme_breaks_at + 1.0, reg.policy)
            is TrustLevel.UNTRUSTED
        )

    def test_key_leak_forces_untrusted(self):
        reg = registry(leak_rate=0.5)  # leaks fast
        record = reg.commission("dev-1", "hmac-sha256", at=0.0)
        assert record.key_leaks_at is not None
        assert (
            record.level_at(record.key_leaks_at + 1.0, reg.policy)
            is TrustLevel.UNTRUSTED
        )

    def test_double_commission_rejected(self):
        reg = registry()
        reg.commission("dev-1", "ed25519")
        with pytest.raises(ValueError):
            reg.commission("dev-1", "ed25519")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            registry().commission("dev-1", "rot13")


class TestFleetTrust:
    def _fleet(self, n=200, leak_rate=0.002):
        reg = registry(leak_rate=leak_rate)
        for index in range(n):
            reg.commission(f"dev-{index}", "ed25519", at=0.0)
        return reg

    def test_census_sums_to_fleet(self):
        reg = self._fleet()
        census = reg.census(units.years(30.0))
        assert sum(census.values()) == 200

    def test_trusted_fraction_declines(self):
        reg = self._fleet()
        early = reg.trusted_fraction(units.years(5.0))
        late = reg.trusted_fraction(units.years(40.0))
        assert early > late

    def test_blocklist_grows(self):
        reg = self._fleet(leak_rate=0.02)
        early = len(reg.blocklist_at(units.years(2.0)))
        late = len(reg.blocklist_at(units.years(45.0)))
        assert late > early

    def test_trust_horizon_shorter_than_hardware(self):
        # §4.1's point: trust, not hardware, can be the binding lifetime.
        reg = self._fleet()
        horizon = trust_horizon(reg, min_fraction=0.5)
        assert horizon <= units.years(SCHEMES["ed25519"].cryptoperiod_years) + units.years(1.0)

    def test_trust_horizon_empty_registry(self):
        with pytest.raises(ValueError):
            trust_horizon(registry())

    def test_empty_registry_fraction(self):
        assert registry().trusted_fraction(0.0) == 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TrustPolicy(degraded_acceptance_years=-1.0)
        with pytest.raises(ValueError):
            TrustPolicy(key_leak_rate_per_year=2.0)
