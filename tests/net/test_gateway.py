"""Tests for repro.net.gateway."""

import pytest

from repro.core import units
from repro.core.policy import GatewayRole
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    DataCreditWallet,
    OwnedGateway,
    Position,
    ThirdPartyGateway,
    migrate_devices,
)
from repro.radio import Packet, ieee802154
from repro.radio.lora import LoRaParameters, suburban_path_loss


def owned_stack(sim):
    cloud = CloudEndpoint(sim)
    cloud.deploy()
    backhaul = CampusBackhaul(sim)
    backhaul.add_dependency(cloud)
    backhaul.deploy()
    gateway = OwnedGateway(
        sim, spec=ieee802154.default_spec(), path_loss=ieee802154.urban_path_loss()
    )
    gateway.add_dependency(backhaul)
    gateway.deploy()
    return cloud, backhaul, gateway


def pkt(source="dev-1", t=0.0, payload=24):
    return Packet(source=source, created_at=t, payload_bytes=payload)


class TestForwarding:
    def test_receive_forwards_to_cloud(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        assert gateway.receive(pkt())
        assert gateway.packets_forwarded == 1
        assert len(cloud.deliveries) == 1

    def test_blocklist_drops(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        gateway.block("bad-dev")
        assert not gateway.receive(pkt("bad-dev"))
        assert gateway.drops_blocklist == 1
        assert not cloud.deliveries
        gateway.unblock("bad-dev")
        assert gateway.receive(pkt("bad-dev"))

    def test_dead_gateway_hears_nothing(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        gateway.fail()
        assert not gateway.receive(pkt())
        assert gateway.packets_received == 0

    def test_backhaul_outage_drops(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        backhaul.up = False
        assert not gateway.receive(pkt())
        assert gateway.drops_backhaul == 1

    def test_dead_backhaul_drops(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        backhaul.fail()
        assert not gateway.receive(pkt())
        assert gateway.drops_backhaul == 1

    def test_endpoint_down_drop_counted(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        cloud.fail()
        assert not gateway.receive(pkt())
        assert gateway.drops_endpoint == 1

    def test_second_backhaul_used_when_first_down(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        second = CampusBackhaul(sim)
        second.add_dependency(cloud)
        second.deploy()
        gateway.add_dependency(second)
        backhaul.up = False
        assert gateway.receive(pkt())
        assert cloud.deliveries[0].via_backhaul == second.name


class TestCommissioning:
    def test_router_only_cheap(self, sim):
        __, __, gateway = owned_stack(sim)
        assert gateway.commissioning_hours() == 1.0

    def test_stateful_scales_with_dependents(self, sim):
        cloud, backhaul, gateway = owned_stack(sim)
        gateway.role = GatewayRole.STATEFUL_CONTROLLER

        class Dep:
            pass

        gateway.dependents = [Dep() for _ in range(8)]
        assert gateway.commissioning_hours() == 1.0 + 2.0


class TestThirdParty:
    def _hotspot(self, sim, departs_at=None, wallet=None):
        lora = LoRaParameters(spreading_factor=10)
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        backhaul = CampusBackhaul(sim)
        backhaul.add_dependency(cloud)
        backhaul.deploy()
        hotspot = ThirdPartyGateway(
            sim,
            spec=lora.spec(),
            path_loss=suburban_path_loss(),
            departs_at=departs_at,
            asn=7922,
        )
        hotspot.add_dependency(backhaul)
        if wallet is not None:
            hotspot.wallet = wallet
        hotspot.deploy()
        return cloud, hotspot

    def test_owner_churn_retires(self, sim):
        __, hotspot = self._hotspot(sim, departs_at=units.years(3.0))
        sim.run_until(units.years(2.9))
        assert hotspot.alive
        sim.run_until(units.years(3.1))
        assert not hotspot.alive
        assert hotspot.state.value == "retired"

    def test_wallet_gates_forwarding(self, sim):
        wallet = DataCreditWallet()
        wallet.provision(2)
        cloud, hotspot = self._hotspot(sim, wallet=wallet)
        assert hotspot.receive(pkt())
        assert hotspot.receive(pkt())
        assert not hotspot.receive(pkt())  # broke
        assert hotspot.drops_unpaid == 1
        assert len(cloud.deliveries) == 2

    def test_large_packet_costs_more_credits(self, sim):
        wallet = DataCreditWallet()
        wallet.provision(3)
        cloud, hotspot = self._hotspot(sim, wallet=wallet)
        assert hotspot.receive(pkt(payload=50))  # 3 credits
        assert wallet.balance == 0

    def test_asn_tagged(self, sim):
        __, hotspot = self._hotspot(sim)
        assert hotspot.tags["asn"] == "7922"


class TestMigration:
    def _two_gateways(self, sim):
        cloud, backhaul, old = owned_stack(sim)
        new = OwnedGateway(
            sim, spec=ieee802154.default_spec(), path_loss=ieee802154.urban_path_loss()
        )
        new.add_dependency(backhaul)
        new.deploy()
        return old, new

    def test_migrate_moves_dependents(self, sim):
        from repro.core.entity import Entity

        class Dev(Entity):
            TIER = "device"

        old, new = self._two_gateways(sim)
        devices = [Dev(sim) for _ in range(3)]
        for d in devices:
            d.add_dependency(old)
        moved = migrate_devices(old, new)
        assert len(moved) == 3
        assert all(new in d.depends_on and old not in d.depends_on for d in devices)

    def test_instance_bound_devices_stranded(self, sim):
        from repro.core.entity import Entity

        class Dev(Entity):
            TIER = "device"

        old, new = self._two_gateways(sim)
        device = Dev(sim)
        device.add_dependency(old)
        moved = migrate_devices(old, new, rehome_allowed=False)
        assert moved == []
        assert old in device.depends_on
