"""Property tests for the spatial index and grid-backed association.

The city-scale refactor swapped O(devices × gateways) scans for
:class:`~repro.net.geometry.SpatialGrid` queries on the promise that the
results are *identical*, not approximately so.  These tests check that
promise against brute force on randomized layouts, plus regressions for
two accounting bugs the refactor fixed: ``associate_by_coverage``
counting dependencies it never wired, and ``INSTANCE_BOUND`` devices
silently rebinding past a non-gateway first dependency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.core.engine import Simulation
from repro.core.policy import AttachmentPolicy
from repro.net import EdgeDevice, OwnedGateway, associate_by_coverage
from repro.net.geometry import Position, SpatialGrid
from repro.radio import ieee802154
from repro.radio.link import link_budget

# Coordinates snap sub-nanometre magnitudes to zero: below ~1e-162 the
# squared-distance metric underflows to exactly 0.0, making a point at a
# *nonzero* offset "within" a zero radius by the dx²+dy² metric while its
# linear coordinate still lands in a neighbouring cell.  Deployments are
# metres-scale; production queries use radius >= 1 m.
_axis = st.floats(min_value=-500.0, max_value=500.0, allow_nan=False).map(
    lambda v: 0.0 if abs(v) < 1e-9 else v
)
coordinates = st.tuples(_axis, _axis)


class TestSpatialGridProperties:
    @given(
        points=st.lists(coordinates, min_size=0, max_size=60),
        query=coordinates,
        radius=st.floats(min_value=0.0, max_value=800.0, allow_nan=False),
        cell=st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_query_radius_matches_brute_force(self, points, query, radius, cell):
        grid = SpatialGrid(cell_size_m=cell)
        for index, (x, y) in enumerate(points):
            grid.insert(x, y, index)
        qx, qy = query
        expected = [
            index
            for index, (x, y) in enumerate(points)
            if (x - qx) ** 2 + (y - qy) ** 2 <= radius * radius
        ]
        assert grid.query_radius(qx, qy, radius) == expected

    @given(
        points=st.lists(coordinates, min_size=0, max_size=60),
        query=coordinates,
        count=st.integers(min_value=1, max_value=10),
        cell=st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_nearest_matches_brute_force(self, points, query, count, cell):
        grid = SpatialGrid(cell_size_m=cell)
        for index, (x, y) in enumerate(points):
            grid.insert(x, y, index)
        qx, qy = query
        ranked = sorted(
            ((x - qx) ** 2 + (y - qy) ** 2, index)
            for index, (x, y) in enumerate(points)
        )
        expected = [index for __, index in ranked[:count]]
        assert grid.nearest(qx, qy, count) == expected

    @given(
        points=st.lists(coordinates, min_size=0, max_size=60),
        query=coordinates,
        count=st.integers(min_value=1, max_value=10),
        cell=st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_nearest_with_predicate_matches_brute_force(
        self, points, query, count, cell
    ):
        grid = SpatialGrid(cell_size_m=cell)
        for index, (x, y) in enumerate(points):
            grid.insert(x, y, index)
        qx, qy = query
        ranked = sorted(
            ((x - qx) ** 2 + (y - qy) ** 2, index)
            for index, (x, y) in enumerate(points)
            if index % 2 == 0
        )
        expected = [index for __, index in ranked[:count]]
        assert grid.nearest(qx, qy, count, where=lambda i: i % 2 == 0) == expected


def full_scan_expectation(devices, gateways, min_success, max_per_device):
    """The pre-grid reference algorithm: score every (device, gateway)
    pair with the deterministic link budget, keep qualifiers, stable-sort
    by success descending, and wire the top ``max_per_device``."""
    expected_wiring = {}
    for device in devices:
        scored = []
        for gateway in gateways:
            if gateway.technology != device.technology:
                continue
            distance = max(device.position.distance_to(gateway.position), 1.0)
            budget = link_budget(device.spec, gateway.path_loss, distance)
            if budget.mean_success >= min_success:
                scored.append((budget.mean_success, gateway))
        scored.sort(key=lambda pair: -pair[0])
        expected_wiring[device.name] = [g for __, g in scored[:max_per_device]]
    return expected_wiring


class TestGridAssociationEquivalence:
    @given(
        device_points=st.lists(coordinates, min_size=1, max_size=12),
        gateway_points=st.lists(coordinates, min_size=1, max_size=12),
        max_per_device=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_full_scan_on_random_layouts(
        self, device_points, gateway_points, max_per_device
    ):
        sim = Simulation(seed=0)
        spec = ieee802154.default_spec()
        path_loss = ieee802154.urban_path_loss()
        devices = [
            EdgeDevice(
                sim,
                technology="802.15.4",
                spec=spec,
                airtime_s=ieee802154.airtime_s(24),
                report_interval=units.HOUR,
                position=Position(x, y),
            )
            for x, y in device_points
        ]
        gateways = [
            OwnedGateway(sim, spec=spec, path_loss=path_loss, position=Position(x, y))
            for x, y in gateway_points
        ]
        expected = full_scan_expectation(devices, gateways, 0.5, max_per_device)
        attached = associate_by_coverage(
            devices, gateways, max_gateways_per_device=max_per_device
        )
        for device in devices:
            want = expected[device.name]
            assert attached[device.name] == len(want)
            assert list(device.depends_on) == want


class TestWiredCountRegression:
    """Satellite fix: the return value counts dependencies *wired*, not
    candidates considered — pre-existing links must not be recounted."""

    def test_preexisting_dependency_not_recounted(self, sim):
        spec = ieee802154.default_spec()
        path_loss = ieee802154.urban_path_loss()
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=spec,
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.HOUR,
            position=Position(0, 0),
        )
        near = OwnedGateway(sim, spec=spec, path_loss=path_loss, position=Position(5, 0))
        mid = OwnedGateway(sim, spec=spec, path_loss=path_loss, position=Position(20, 0))
        device.add_dependency(near)  # commissioned before the survey
        attached = associate_by_coverage(
            [device], [near, mid], max_gateways_per_device=2
        )
        assert attached[device.name] == 1  # only `mid` was newly wired
        assert list(device.depends_on) == [near, mid]

    def test_rerun_is_idempotent_and_counts_zero(self, sim):
        spec = ieee802154.default_spec()
        path_loss = ieee802154.urban_path_loss()
        device = EdgeDevice(
            sim,
            technology="802.15.4",
            spec=spec,
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.HOUR,
            position=Position(0, 0),
        )
        gateway = OwnedGateway(
            sim, spec=spec, path_loss=path_loss, position=Position(5, 0)
        )
        first = associate_by_coverage([device], [gateway])
        second = associate_by_coverage([device], [gateway])
        assert first[device.name] == 1
        assert second[device.name] == 0
        assert list(device.depends_on) == [gateway]


class TestInstanceBoundTruncationRegression:
    """Satellite fix: INSTANCE_BOUND means bound to the literal first
    dependency.  If that instance is incompatible (or not a gateway at
    all), the device is stranded — it must not silently rebind to a
    later, compatible dependency."""

    def _device(self, sim):
        return EdgeDevice(
            sim,
            technology="802.15.4",
            spec=ieee802154.default_spec(),
            airtime_s=ieee802154.airtime_s(24),
            report_interval=units.HOUR,
            position=Position(0, 0),
            attachment=AttachmentPolicy.INSTANCE_BOUND,
        )

    def test_non_gateway_first_dependency_strands(self, sim):
        from repro.net import CampusBackhaul, CloudEndpoint

        endpoint = CloudEndpoint(sim)
        backhaul = CampusBackhaul(sim)
        backhaul.add_dependency(endpoint)
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(5, 0),
        )
        gateway.add_dependency(backhaul)
        device = self._device(sim)
        device.add_dependency(backhaul)  # commissioning mistake
        device.add_dependency(gateway)
        for entity in (endpoint, backhaul, gateway, device):
            entity.deploy()
        assert device.candidate_gateways() == []
        sim.run_until(units.days(1.0))
        assert device.delivered == 0
        assert device.no_gateway == device.attempts

    def test_incompatible_technology_first_dependency_strands(self, sim):
        from repro.net import ThirdPartyGateway
        from repro.radio.lora import LoRaParameters, suburban_path_loss

        lora_gw = ThirdPartyGateway(
            sim,
            spec=LoRaParameters().spec(),
            path_loss=suburban_path_loss(),
            position=Position(5, 0),
        )
        compatible = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(5, 0),
        )
        device = self._device(sim)
        device.add_dependency(lora_gw)
        device.add_dependency(compatible)
        assert device.candidate_gateways() == []

    def test_compatible_first_dependency_still_works(self, sim):
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(5, 0),
        )
        device = self._device(sim)
        device.add_dependency(gateway)
        assert device.candidate_gateways() == [gateway]
