"""Tests for repro.net.cloud."""

import pytest

from repro.core import units
from repro.net import MAX_DOMAIN_LEASE, CloudEndpoint
from repro.radio import Packet


def packet(source="dev-1", t=0.0):
    return Packet(source=source, created_at=t, payload_bytes=24)


class TestDelivery:
    def test_deliver_records(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        assert cloud.deliver(packet(), "gw", "bh")
        assert len(cloud.deliveries) == 1
        assert cloud.per_device_last["dev-1"] == 0.0

    def test_dead_endpoint_refuses(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        cloud.fail()
        assert not cloud.deliver(packet(), "gw", "bh")

    def test_device_silence(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        cloud.deliver(packet("a"), "gw", "bh")
        sim.run_until(units.days(3.0))
        silence = cloud.device_silence(sim.now)
        assert silence["a"] == pytest.approx(units.days(3.0))


class TestWeeklyUptime:
    def test_full_uptime(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        for week in range(10):
            sim.run_until(week * units.WEEK + 1.0)
            cloud.deliver(packet(t=sim.now), "gw", "bh")
        report = cloud.weekly_uptime(0.0, 10 * units.WEEK)
        assert report.uptime == 1.0
        assert report.longest_gap_weeks == 0
        assert report.meets_goal(0.99)

    def test_partial_uptime_and_gap(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        # Arrivals only in weeks 0 and 5 of a 6-week window.
        cloud.deliver(packet(t=0.0), "gw", "bh")
        sim.run_until(5 * units.WEEK + 1.0)
        cloud.deliver(packet(t=sim.now), "gw", "bh")
        report = cloud.weekly_uptime(0.0, 6 * units.WEEK)
        assert report.up_weeks == 2
        assert report.uptime == pytest.approx(2.0 / 6.0)
        assert report.longest_gap_weeks == 4
        assert not report.meets_goal()

    def test_multiple_arrivals_one_week_count_once(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        for _ in range(5):
            cloud.deliver(packet(t=0.0), "gw", "bh")
        report = cloud.weekly_uptime(0.0, 2 * units.WEEK)
        assert report.up_weeks == 1
        assert report.total_deliveries == 5

    def test_window_validation(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        with pytest.raises(ValueError):
            cloud.weekly_uptime(10.0, 10.0)
        with pytest.raises(ValueError):
            cloud.weekly_uptime(0.0, units.DAY)


class TestDomainLease:
    def test_renewals_every_ten_years(self, sim):
        cloud = CloudEndpoint(sim, renewal_miss_probability=0.0)
        cloud.deploy()
        sim.run_until(units.years(50.0) + units.DAY)
        assert cloud.domain_renewals == 5
        assert cloud.missed_renewals == 0
        assert cloud.domain_up

    def test_lease_constant(self):
        assert MAX_DOMAIN_LEASE == units.years(10.0)

    def test_certain_miss_darkens_page(self, sim):
        cloud = CloudEndpoint(
            sim, renewal_miss_probability=1.0, renewal_recovery=units.days(30.0)
        )
        cloud.deploy()
        sim.run_until(units.years(10.0) + units.days(1.0))
        assert not cloud.domain_up
        assert not cloud.accepting()
        sim.run_until(units.years(10.0) + units.days(31.0))
        assert cloud.domain_up

    def test_lapse_refuses_deliveries(self, sim):
        cloud = CloudEndpoint(sim, renewal_miss_probability=1.0)
        cloud.deploy()
        sim.run_until(units.years(10.0) + units.DAY)
        assert not cloud.deliver(packet(t=sim.now), "gw", "bh")

    def test_lapses_recorded(self, sim):
        cloud = CloudEndpoint(sim, renewal_miss_probability=1.0)
        cloud.deploy()
        sim.run_until(units.years(21.0))
        assert len(sim.records("domain-lapse")) == 2

    def test_probability_validation(self, sim):
        with pytest.raises(ValueError):
            CloudEndpoint(sim, renewal_miss_probability=1.5)
