"""Tests for repro.net.device."""

import pytest

from repro.core import units
from repro.core.policy import AttachmentPolicy
from repro.energy import Capacitor, CathodicProtectionSource, HarvestingSystem
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    EdgeDevice,
    OwnedGateway,
    Position,
)
from repro.radio import ieee802154
from repro.reliability import Deterministic


def build(sim, n_gateways=1, gateway_positions=None, **device_kwargs):
    cloud = CloudEndpoint(sim)
    cloud.deploy()
    backhaul = CampusBackhaul(sim)
    backhaul.add_dependency(cloud)
    backhaul.deploy()
    gateways = []
    positions = gateway_positions or [Position(10.0 * i, 0.0) for i in range(n_gateways)]
    for position in positions:
        gateway = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=position,
        )
        gateway.add_dependency(backhaul)
        gateway.deploy()
        gateways.append(gateway)
    defaults = dict(
        technology="802.15.4",
        spec=ieee802154.default_spec(),
        airtime_s=ieee802154.airtime_s(24),
        report_interval=units.HOUR,
        position=Position(5.0, 0.0),
    )
    defaults.update(device_kwargs)
    device = EdgeDevice(sim, **defaults)
    for gateway in gateways:
        device.add_dependency(gateway)
    device.deploy()
    return cloud, gateways, device


class TestReporting:
    def test_delivers_on_schedule(self, sim):
        cloud, gateways, device = build(sim)
        sim.run_until(units.days(1.0))
        assert device.attempts == 24
        assert device.delivered >= 22  # near-field link, rare shadowing loss
        assert len(cloud.deliveries) == device.delivered

    def test_no_gateway_counted(self, sim):
        cloud, gateways, device = build(sim)
        gateways[0].fail()
        sim.run_until(units.days(1.0))
        assert device.no_gateway == device.attempts
        assert device.delivered == 0

    def test_distance_causes_radio_loss(self, sim):
        cloud, gateways, device = build(
            sim, gateway_positions=[Position(5000.0, 0.0)]
        )
        sim.run_until(units.days(2.0))
        assert device.radio_lost > 0.9 * device.attempts

    def test_dead_device_stops_reporting(self, sim):
        cloud, gateways, device = build(
            sim, lifetime_model=Deterministic(units.days(1.0) + 1.0)
        )
        sim.run_until(units.days(3.0))
        assert device.attempts == 24
        assert not device.alive

    def test_loss_breakdown_sums(self, sim):
        cloud, gateways, device = build(sim)
        sim.run_until(units.days(2.0))
        breakdown = device.loss_breakdown()
        assert breakdown["attempts"] == (
            breakdown["delivered"]
            + breakdown["energy_denied"]
            + breakdown["no_gateway"]
            + breakdown["radio_lost"]
        )

    def test_delivery_rate(self, sim):
        cloud, gateways, device = build(sim)
        sim.run_until(units.days(1.0))
        assert device.delivery_rate == device.delivered / device.attempts

    def test_delivery_rate_nan_before_attempts(self, sim):
        # Never-scheduled is not always-failed: the rate is NaN, not 0.0,
        # so fleet means cannot silently absorb idle devices.
        import math

        cloud, gateways, device = build(sim)
        assert math.isnan(device.delivery_rate)


class TestEnergyIntegration:
    def test_harvesting_device_sustains_hourly(self, sim):
        power = HarvestingSystem(
            source=CathodicProtectionSource(),
            storage=Capacitor(capacity_j=2.0, stored_j=1.0),
        )
        cloud, gateways, device = build(sim, power=power)
        sim.run_until(units.days(7.0))
        assert device.energy_denied == 0
        assert device.delivered > 0

    def test_starved_device_denied(self, sim):
        power = HarvestingSystem(
            source=CathodicProtectionSource(nominal_power_w=1e-8),
            storage=Capacitor(capacity_j=0.001, stored_j=0.001),
        )
        cloud, gateways, device = build(sim, power=power)
        sim.run_until(units.days(7.0))
        assert device.energy_denied > 0.8 * device.attempts


class TestAttachmentPolicy:
    def test_any_compatible_uses_backup_gateway(self, sim):
        cloud, gateways, device = build(
            sim,
            gateway_positions=[Position(5.0, 0.0), Position(20.0, 0.0)],
        )
        gateways[0].fail()
        sim.run_until(units.days(1.0))
        assert device.delivered > 0  # re-homed to the second gateway

    def test_instance_bound_stranded_by_first_gateway(self, sim):
        cloud, gateways, device = build(
            sim,
            gateway_positions=[Position(5.0, 0.0), Position(20.0, 0.0)],
            attachment=AttachmentPolicy.INSTANCE_BOUND,
        )
        gateways[0].fail()
        sim.run_until(units.days(1.0))
        assert device.delivered == 0
        assert device.no_gateway == device.attempts

    def test_directory_extends_candidates(self, sim):
        cloud, gateways, device = build(sim, n_gateways=1)
        extra = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(6.0, 0.0),
        )
        extra.add_dependency(gateways[0].depends_on[0])
        extra.deploy()
        device.gateway_directory = lambda: [extra]
        gateways[0].fail()
        sim.run_until(units.days(1.0))
        assert device.delivered > 0

    def test_directory_ignored_when_instance_bound(self, sim):
        cloud, gateways, device = build(
            sim, attachment=AttachmentPolicy.INSTANCE_BOUND
        )
        extra = OwnedGateway(
            sim,
            spec=ieee802154.default_spec(),
            path_loss=ieee802154.urban_path_loss(),
            position=Position(6.0, 0.0),
        )
        extra.deploy()
        device.gateway_directory = lambda: [extra]
        gateways[0].fail()
        sim.run_until(units.days(1.0))
        assert device.delivered == 0

    def test_candidates_sorted_by_distance(self, sim):
        cloud, gateways, device = build(
            sim,
            gateway_positions=[Position(100.0, 0.0), Position(6.0, 0.0)],
        )
        candidates = device.candidate_gateways()
        assert candidates[0].position.x == 6.0

    def test_technology_mismatch_excluded(self, sim):
        cloud, gateways, device = build(sim)
        from repro.radio.lora import LoRaParameters, suburban_path_loss
        from repro.net import ThirdPartyGateway

        lora_gw = ThirdPartyGateway(
            sim, spec=LoRaParameters().spec(), path_loss=suburban_path_loss()
        )
        lora_gw.deploy()
        device.add_dependency(lora_gw)
        assert lora_gw not in device.candidate_gateways()


class TestValidation:
    def test_bad_report_interval(self, sim):
        with pytest.raises(ValueError):
            EdgeDevice(
                sim,
                technology="802.15.4",
                spec=ieee802154.default_spec(),
                airtime_s=0.001,
                report_interval=0.0,
            )

    def test_bad_airtime(self, sim):
        with pytest.raises(ValueError):
            EdgeDevice(
                sim,
                technology="802.15.4",
                spec=ieee802154.default_spec(),
                airtime_s=0.0,
                report_interval=units.HOUR,
            )

    def test_packet_contents(self, sim):
        cloud, gateways, device = build(sim)
        packet = device.make_packet()
        assert packet.source == device.name
        assert packet.payload_bytes == 24
        assert packet.signed_with.startswith("factory-key:")
        assert packet.reading is not None
