"""Tests for repro.net.topology."""

import pytest

from repro.core import units
from repro.net import (
    CampusBackhaul,
    CloudEndpoint,
    EdgeDevice,
    Network,
    OwnedGateway,
    Position,
    associate_by_coverage,
)
from repro.radio import ieee802154


def make_device(sim, position):
    return EdgeDevice(
        sim,
        technology="802.15.4",
        spec=ieee802154.default_spec(),
        airtime_s=ieee802154.airtime_s(24),
        report_interval=units.HOUR,
        position=position,
    )


def make_gateway(sim, position):
    return OwnedGateway(
        sim,
        spec=ieee802154.default_spec(),
        path_loss=ieee802154.urban_path_loss(),
        position=position,
    )


class TestAssociateByCoverage:
    def test_in_range_attached(self, sim):
        device = make_device(sim, Position(0, 0))
        gateway = make_gateway(sim, Position(10, 0))
        attached = associate_by_coverage([device], [gateway])
        assert attached[device.name] == 1
        assert gateway in device.depends_on

    def test_out_of_range_unattached(self, sim):
        device = make_device(sim, Position(0, 0))
        gateway = make_gateway(sim, Position(50_000, 0))
        attached = associate_by_coverage([device], [gateway])
        assert attached[device.name] == 0
        assert not device.depends_on

    def test_best_gateways_chosen(self, sim):
        device = make_device(sim, Position(0, 0))
        near = make_gateway(sim, Position(5, 0))
        mid = make_gateway(sim, Position(20, 0))
        far = make_gateway(sim, Position(60, 0))
        associate_by_coverage([device], [far, near, mid], max_gateways_per_device=2)
        assert near in device.depends_on
        assert mid in device.depends_on
        assert far not in device.depends_on

    def test_technology_filter(self, sim):
        from repro.net import ThirdPartyGateway
        from repro.radio.lora import LoRaParameters, suburban_path_loss

        device = make_device(sim, Position(0, 0))
        lora_gw = ThirdPartyGateway(
            sim,
            spec=LoRaParameters().spec(),
            path_loss=suburban_path_loss(),
            position=Position(5, 0),
        )
        attached = associate_by_coverage([device], [lora_gw])
        assert attached[device.name] == 0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            associate_by_coverage([], [], min_success=1.5)
        with pytest.raises(ValueError):
            associate_by_coverage([], [], max_gateways_per_device=0)


class TestNetwork:
    def _network(self, sim, n_devices=4):
        cloud = CloudEndpoint(sim)
        backhaul = CampusBackhaul(sim)
        backhaul.add_dependency(cloud)
        gateway = make_gateway(sim, Position(0, 0))
        gateway.add_dependency(backhaul)
        devices = [
            make_device(sim, Position(5.0 + i, 0.0)) for i in range(n_devices)
        ]
        net = Network(
            sim=sim,
            endpoint=cloud,
            backhauls=[backhaul],
            gateways=[gateway],
            devices=devices,
        )
        associate_by_coverage(devices, [gateway])
        net.deploy_all()
        return net

    def test_deploy_all_orders_and_registers(self, sim):
        net = self._network(sim)
        assert net.endpoint.alive
        assert all(d.alive for d in net.devices)
        assert len(net.hierarchy.tier("device")) == 4

    def test_deploy_all_skips_predeployed(self, sim):
        cloud = CloudEndpoint(sim)
        cloud.deploy()
        net = Network(sim=sim, endpoint=cloud)
        net.deploy_all()  # must not raise on already-deployed endpoint
        assert cloud.alive

    def test_delivery_summary_accounts_everything(self, sim):
        net = self._network(sim)
        sim.run_until(units.days(2.0))
        summary = net.delivery_summary()
        assert summary.attempts == 4 * 48
        assert summary.attempts == (
            summary.delivered
            + summary.energy_denied
            + summary.no_gateway
            + summary.radio_lost
            + summary.dropped_at_gateway
        )
        assert summary.delivery_rate > 0.8

    def test_alive_counts(self, sim):
        net = self._network(sim)
        counts = net.alive_counts()
        assert counts == {"device": 4, "gateway": 1, "backhaul": 1, "cloud": 1}
        net.gateways[0].fail()
        assert net.alive_counts()["gateway"] == 0

    def test_empty_summary(self, sim):
        import math

        net = Network(sim=sim, endpoint=CloudEndpoint(sim))
        assert math.isnan(net.delivery_summary().delivery_rate)
