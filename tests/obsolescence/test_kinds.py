"""Tests for repro.obsolescence.kinds."""

from repro.obsolescence import (
    ObsolescenceEvent,
    ObsolescenceKind,
    classify_reason,
    split_events,
)


class TestSplit:
    def _events(self):
        return [
            ObsolescenceEvent(0.0, "a", ObsolescenceKind.FUNCTIONAL),
            ObsolescenceEvent(1.0, "b", ObsolescenceKind.TECHNICAL),
            ObsolescenceEvent(2.0, "c", ObsolescenceKind.TECHNICAL),
            ObsolescenceEvent(3.0, "d", ObsolescenceKind.PLANNED),
        ]

    def test_tally(self):
        split = split_events(self._events())
        assert split.total == 4
        assert split.by_kind[ObsolescenceKind.TECHNICAL] == 2

    def test_fractions(self):
        split = split_events(self._events())
        assert split.fraction(ObsolescenceKind.FUNCTIONAL) == 0.25
        assert split.fraction(ObsolescenceKind.STYLE) == 0.0

    def test_wasted_fraction(self):
        # Everything except functional wear-out is working hardware
        # thrown away.
        split = split_events(self._events())
        assert split.wasted_fraction == 0.75

    def test_empty(self):
        split = split_events([])
        assert split.total == 0
        assert split.fraction(ObsolescenceKind.FUNCTIONAL) == 0.0


class TestClassifyReason:
    def test_functional(self):
        assert classify_reason("wearout") is ObsolescenceKind.FUNCTIONAL
        assert classify_reason("battery dead") is ObsolescenceKind.FUNCTIONAL

    def test_technical(self):
        assert classify_reason("2G-sunset") is ObsolescenceKind.TECHNICAL
        assert classify_reason("owner-churn") is ObsolescenceKind.TECHNICAL
        assert classify_reason("scheduled upgrade") is ObsolescenceKind.TECHNICAL

    def test_planned(self):
        assert classify_reason("vendor lockout") is ObsolescenceKind.PLANNED

    def test_style(self):
        assert classify_reason("style refresh") is ObsolescenceKind.STYLE

    def test_unknown_defaults_functional(self):
        assert classify_reason("mystery") is ObsolescenceKind.FUNCTIONAL
