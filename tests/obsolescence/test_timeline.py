"""Tests for repro.obsolescence.timeline."""

import numpy as np
import pytest

from repro.core import units
from repro.obsolescence import (
    Generation,
    TechnologyTimeline,
    historical_cellular_timeline,
    synthesize_timeline,
)


class TestGeneration:
    def test_availability_window(self):
        g = Generation("2G", units.years(2.0), units.years(29.0))
        assert not g.available(units.years(1.0))
        assert g.available(units.years(10.0))
        assert not g.available(units.years(29.0))

    def test_open_ended(self):
        g = Generation("5G", units.years(29.0), None)
        assert g.available(units.years(500.0))
        assert g.service_years is None

    def test_service_years(self):
        g = Generation("3G", units.years(12.0), units.years(32.0))
        assert g.service_years == pytest.approx(20.0)


class TestHistoricalTimeline:
    def test_current_tracks_newest(self):
        tl = historical_cellular_timeline()
        assert tl.current(units.years(5.0)).name == "2G"
        assert tl.current(units.years(15.0)).name == "3G"
        assert tl.current(units.years(25.0)).name == "4G"
        assert tl.current(units.years(40.0)).name == "5G"

    def test_nothing_before_launch(self):
        assert historical_cellular_timeline().current(units.years(1.0)) is None

    def test_available_overlap(self):
        tl = historical_cellular_timeline()
        names = {g.name for g in tl.available_at(units.years(25.0))}
        assert names == {"2G", "3G", "4G"}

    def test_sunset_lookup(self):
        tl = historical_cellular_timeline()
        assert tl.sunset_of("2G") == units.years(29.0)
        assert tl.sunset_of("5G") is None
        assert tl.sunset_of("6G") is None

    def test_mean_service_years(self):
        tl = historical_cellular_timeline()
        # 2G: 27, 3G: 20, 4G: 25 -> 24.
        assert tl.mean_service_years() == pytest.approx(24.0)

    def test_strandings_treadmill(self):
        tl = historical_cellular_timeline()
        # A 2G device deployed at year 5 is stranded at the 2G sunset
        # (year 29); its replacement binds to 5G, which has no announced
        # sunset, so the treadmill stops at one stranding.
        count = tl.strandings(units.years(5.0), units.years(50.0))
        assert count == 1

    def test_strandings_repeat_on_closed_timeline(self):
        # Every generation closes after 10 years, new one every 10: a
        # century horizon forces nine replacements.
        generations = [
            Generation(f"G{i}", units.years(10.0 * i), units.years(10.0 * (i + 1)))
            for i in range(12)
        ]
        tl = TechnologyTimeline(generations=generations)
        assert tl.strandings(0.0, units.years(100.0)) == 9

    def test_strandings_zero_for_short_horizon(self):
        tl = historical_cellular_timeline()
        assert tl.strandings(units.years(5.0), units.years(20.0)) == 0


class TestSynthesizedTimeline:
    def test_covers_horizon(self, rng):
        tl = synthesize_timeline(rng, horizon=units.years(100.0))
        assert len(tl.generations) >= 5
        assert tl.current(units.years(50.0)) is not None

    def test_deterministic_per_seed(self):
        a = synthesize_timeline(np.random.default_rng(3))
        b = synthesize_timeline(np.random.default_rng(3))
        assert [g.sunset_at for g in a.generations] == [
            g.sunset_at for g in b.generations
        ]

    def test_service_lives_plausible(self, rng):
        tl = synthesize_timeline(rng, horizon=units.years(300.0))
        years = [g.service_years for g in tl.generations]
        assert 10.0 < np.mean(years) < 40.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            synthesize_timeline(rng, mean_generation_gap=0.0)
