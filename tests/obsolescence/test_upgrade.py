"""Tests for repro.obsolescence.upgrade."""

import numpy as np
import pytest

from repro.core import units
from repro.obsolescence import (
    ObsolescenceKind,
    UpgradePolicy,
    historical_cellular_timeline,
    simulate_fleet_fates,
)


def lifetimes(rng, n=2000, mean_years=10.0):
    return rng.weibull(4.0, n) * units.years(mean_years / 0.906)  # mean ~ mean_years


class TestUpgradePolicy:
    def test_factories(self):
        rtf = UpgradePolicy.run_to_failure()
        assert rtf.refresh_years is None
        assert not rtf.follow_sunsets
        today = UpgradePolicy.todays_operator(5.0)
        assert today.refresh_years == 5.0
        assert today.follow_sunsets

    def test_validation(self):
        with pytest.raises(ValueError):
            UpgradePolicy(refresh_years=0.0)
        with pytest.raises(ValueError):
            UpgradePolicy(style_refresh_probability=2.0)


class TestFleetFates:
    def test_run_to_failure_full_utilization(self, rng):
        fates = simulate_fleet_fates(lifetimes(rng), UpgradePolicy.run_to_failure())
        assert fates.utilization == 1.0
        assert fates.split.wasted_fraction == 0.0
        assert fates.wasted_service_years == pytest.approx(0.0)

    def test_todays_operator_wastes_hardware(self, rng):
        # §2: 2-7-year refresh against ~10-year hardware throws most of
        # the hardware's life away.
        fates = simulate_fleet_fates(
            lifetimes(rng), UpgradePolicy.todays_operator(5.0)
        )
        assert fates.utilization < 0.6
        assert fates.split.wasted_fraction > 0.8
        assert fates.mean_realized_years <= 5.0

    def test_shorter_refresh_wastes_more(self, rng):
        lives = lifetimes(rng)
        two = simulate_fleet_fates(lives, UpgradePolicy.todays_operator(2.0))
        seven = simulate_fleet_fates(lives, UpgradePolicy.todays_operator(7.0))
        assert two.utilization < seven.utilization

    def test_sunset_kills_unrefreshed_fleet(self, rng):
        timeline = historical_cellular_timeline()
        policy = UpgradePolicy(refresh_years=None, follow_sunsets=True)
        # Deploy at year 20 on 4G (sunset year 45): hardware with a
        # 40-year mean life mostly dies technically at the sunset.
        lives = lifetimes(rng, mean_years=40.0)
        fates = simulate_fleet_fates(
            lives, policy, timeline, deploy_t=units.years(20.0)
        )
        assert fates.split.fraction(ObsolescenceKind.TECHNICAL) > 0.5

    def test_takeaway_compliant_ignores_sunsets(self, rng):
        timeline = historical_cellular_timeline()
        policy = UpgradePolicy(refresh_years=None, follow_sunsets=False)
        lives = lifetimes(rng, mean_years=40.0)
        fates = simulate_fleet_fates(
            lives, policy, timeline, deploy_t=units.years(20.0)
        )
        assert fates.split.fraction(ObsolescenceKind.FUNCTIONAL) == 1.0

    def test_style_refresh(self, rng):
        policy = UpgradePolicy(
            refresh_years=None, follow_sunsets=False, style_refresh_probability=0.5
        )
        fates = simulate_fleet_fates(lifetimes(rng), policy, rng=rng)
        assert fates.split.fraction(ObsolescenceKind.STYLE) > 0.5

    def test_style_requires_rng(self, rng):
        policy = UpgradePolicy(style_refresh_probability=0.5)
        with pytest.raises(ValueError):
            simulate_fleet_fates(lifetimes(rng), policy)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            simulate_fleet_fates(np.array([]), UpgradePolicy())
