"""Tests for repro.energy.sources."""

import numpy as np
import pytest

from repro.core import units
from repro.energy import (
    CathodicProtectionSource,
    SolarSource,
    ThermalGradientSource,
    VibrationSource,
    source_by_name,
)


class TestCathodic:
    def test_near_constant_output(self, rng):
        source = CathodicProtectionSource(noise_fraction=0.0)
        a = source.power_at(units.days(1.0), rng)
        b = source.power_at(units.days(180.0), rng)
        assert a == pytest.approx(b, rel=0.01)

    def test_slow_degradation(self, rng):
        source = CathodicProtectionSource(noise_fraction=0.0, degradation_per_year=0.005)
        now = source.power_at(0.0, rng)
        later = source.power_at(units.years(50.0), rng)
        assert later == pytest.approx(now * 0.995**50, rel=0.01)
        assert later > 0.7 * now  # still most of its output at 50 years

    def test_noise_never_negative(self, rng):
        source = CathodicProtectionSource(noise_fraction=0.5)
        draws = [source.power_at(1000.0, rng) for _ in range(500)]
        assert min(draws) >= 0.0

    def test_mean_power(self):
        assert CathodicProtectionSource(nominal_power_w=1e-3).mean_power() == 1e-3

    def test_negative_time_rejected(self, rng):
        with pytest.raises(ValueError):
            CathodicProtectionSource().power_at(-1.0, rng)


class TestSolar:
    def test_zero_at_night(self, rng):
        source = SolarSource()
        midnight = units.days(10.0)  # t % DAY == 0 -> 00:00
        assert source.power_at(midnight, rng) == 0.0

    def test_daylight_positive(self, rng):
        source = SolarSource(cloud_fraction=0.0)
        noon = units.days(10.0) + units.hours(12.0)
        assert source.power_at(noon, rng) > 0.0

    def test_noon_peaks_over_morning(self, rng):
        source = SolarSource(cloud_fraction=0.0, seasonal_swing=0.0)
        base = units.days(10.0)
        noon = source.power_at(base + units.hours(12.0), rng)
        morning = source.power_at(base + units.hours(7.0), rng)
        assert noon > morning

    def test_is_daylight(self):
        source = SolarSource()
        assert source.is_daylight(units.hours(12.0))
        assert not source.is_daylight(units.hours(3.0))

    def test_clouds_attenuate(self):
        cloudy = SolarSource(cloud_fraction=1.0, cloud_attenuation=0.1)
        clear = SolarSource(cloud_fraction=0.0)
        assert cloudy.mean_power() < clear.mean_power()

    def test_mean_power_below_peak(self):
        source = SolarSource(peak_power_w=0.05)
        assert 0.0 < source.mean_power() < 0.05


class TestVibration:
    def test_rush_hour_beats_midnight(self, rng):
        source = VibrationSource(burst_probability=0.0)
        monday = units.days(7.0)  # day 7 % 7 == 0 -> weekday
        rush = source.power_at(monday + units.hours(8.5), rng)
        night = source.power_at(monday + units.hours(3.0), rng)
        assert rush > night

    def test_weekend_quieter(self, rng):
        source = VibrationSource(burst_probability=0.0)
        monday_rush = source.power_at(units.days(7.0) + units.hours(8.5), rng)
        saturday_rush = source.power_at(units.days(12.0) + units.hours(8.5), rng)
        assert saturday_rush < monday_rush

    def test_mean_power_positive(self):
        assert VibrationSource().mean_power() > 0.0


class TestThermal:
    def test_gradient_cycles(self, rng):
        source = ThermalGradientSource()
        quarter = source.power_at(units.hours(6.0), rng)
        crossing = source.power_at(units.hours(0.0) + 1.0, rng)
        assert quarter > crossing

    def test_never_negative(self, rng):
        source = ThermalGradientSource()
        draws = [source.power_at(t * 3600.0, rng) for t in range(48)]
        assert min(draws) >= 0.0


class TestFactory:
    def test_all_names(self):
        for name in ("cathodic", "solar", "vibration", "thermal"):
            assert source_by_name(name).mean_power() > 0.0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            source_by_name("zero-point")

    def test_cathodic_is_steadiest(self, rng):
        # The "ambient battery" pitch: far lower variance than solar.
        times = np.arange(0, units.days(7.0), units.hours(1.0))
        cathodic = [CathodicProtectionSource().power_at(float(t), rng) for t in times]
        solar = [SolarSource().power_at(float(t), rng) for t in times]
        cv_c = np.std(cathodic) / np.mean(cathodic)
        cv_s = np.std(solar) / np.mean(solar)
        assert cv_c < 0.1 < cv_s
