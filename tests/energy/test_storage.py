"""Tests for repro.energy.storage."""

import pytest

from repro.core import units
from repro.energy import Battery, Capacitor, StorageError


class TestCapacitor:
    def test_charge_clips_at_capacity(self):
        cap = Capacitor(capacity_j=1.0)
        absorbed = cap.charge(2.0)
        assert absorbed == 1.0
        assert cap.stored_j == 1.0

    def test_discharge_success_and_failure(self):
        cap = Capacitor(capacity_j=1.0, stored_j=0.5)
        assert cap.discharge(0.3)
        assert cap.stored_j == pytest.approx(0.2)
        assert not cap.discharge(0.5)
        assert cap.stored_j == pytest.approx(0.2)  # unchanged on refusal

    def test_leakage(self):
        cap = Capacitor(capacity_j=1.0, stored_j=1.0, leakage_per_day=0.1)
        cap.leak(units.days(1.0))
        assert cap.stored_j == pytest.approx(0.9)
        cap.leak(units.days(2.0))
        assert cap.stored_j == pytest.approx(0.9 * 0.81)

    def test_no_cycle_wear(self):
        cap = Capacitor(capacity_j=1.0)
        for _ in range(10000):
            cap.charge(1.0)
            cap.discharge(1.0)
        assert cap.usable_capacity_j == 1.0  # capacitors do not fade

    def test_fill_fraction(self):
        cap = Capacitor(capacity_j=2.0, stored_j=0.5)
        assert cap.fill_fraction == 0.25

    def test_validation(self):
        with pytest.raises(StorageError):
            Capacitor(capacity_j=0.0)
        with pytest.raises(StorageError):
            Capacitor(capacity_j=1.0, leakage_per_day=1.0)
        with pytest.raises(StorageError):
            Capacitor(capacity_j=1.0, stored_j=2.0)
        cap = Capacitor(capacity_j=1.0)
        with pytest.raises(StorageError):
            cap.charge(-1.0)
        with pytest.raises(StorageError):
            cap.discharge(-1.0)
        with pytest.raises(StorageError):
            cap.leak(-1.0)


class TestBattery:
    def test_cycle_wear_fades_capacity(self):
        battery = Battery(capacity_j=100.0, cycle_life=100.0)
        battery.charge(100.0)
        for _ in range(50):  # 50 full cycle equivalents
            battery.discharge(100.0)
            battery.charge(100.0)
        assert battery.health < 1.0
        assert battery.usable_capacity_j < 100.0

    def test_calendar_fade(self):
        battery = Battery(capacity_j=100.0, calendar_fade_per_year=0.02)
        battery.age(units.years(10.0))
        assert battery.health == pytest.approx(0.8)

    def test_dead_at_end_of_life(self):
        battery = Battery(
            capacity_j=100.0, calendar_fade_per_year=0.02, end_of_life_fraction=0.7
        )
        battery.age(units.years(16.0))  # health 0.68 < 0.7
        assert battery.dead
        assert battery.charge(10.0) == 0.0
        assert not battery.discharge(1.0)

    def test_paper_conventional_wisdom_window(self):
        # Default battery dies from calendar fade alone within 10-20 yr.
        battery = Battery()
        years = 0.0
        while not battery.dead and years < 30.0:
            battery.age(units.years(1.0))
            years += 1.0
        assert 10.0 <= years <= 20.0

    def test_stored_clamped_to_faded_capacity(self):
        battery = Battery(capacity_j=100.0)
        battery.charge(100.0)
        battery.age(units.years(5.0))
        assert battery.stored_j <= battery.usable_capacity_j

    def test_self_discharge(self):
        battery = Battery(capacity_j=100.0, calendar_fade_per_year=0.0)
        battery.charge(100.0)
        battery.leak(units.months(1.0))
        assert battery.stored_j == pytest.approx(98.0, rel=0.01)

    def test_full_cycle_equivalents(self):
        battery = Battery(capacity_j=100.0)
        battery.charge(100.0)
        battery.discharge(50.0)
        assert battery.full_cycle_equivalents == pytest.approx(0.5)

    def test_fill_fraction_of_faded_capacity(self):
        battery = Battery(capacity_j=100.0)
        battery.charge(100.0)
        battery.age(units.years(5.0))
        assert battery.fill_fraction == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(StorageError):
            Battery(capacity_j=0.0)
        with pytest.raises(StorageError):
            Battery(cycle_life=0.0)
        with pytest.raises(StorageError):
            Battery(end_of_life_fraction=1.0)
        battery = Battery()
        with pytest.raises(StorageError):
            battery.charge(-1.0)
        with pytest.raises(StorageError):
            battery.discharge(-1.0)
        with pytest.raises(StorageError):
            battery.age(-1.0)
