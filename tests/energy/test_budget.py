"""Tests for repro.energy.budget."""

import pytest

from repro.core import units
from repro.energy import (
    CathodicProtectionSource,
    TaskProfile,
    budget_report,
    energy_neutral,
    storage_for_outage,
    sustainable_interval,
)


class TestTaskProfile:
    def test_cycle_energy(self):
        profile = TaskProfile(sample_energy_j=100e-6, tx_power_w=0.05)
        assert profile.cycle_energy(0.002) == pytest.approx(200e-6)

    def test_mean_power_includes_sleep_floor(self):
        profile = TaskProfile(sleep_power_w=1e-6)
        power = profile.mean_power(units.HOUR, airtime_s=0.001)
        assert power > 1e-6

    def test_mean_power_scales_with_rate(self):
        profile = TaskProfile()
        hourly = profile.mean_power(units.HOUR, 0.002)
        daily = profile.mean_power(units.DAY, 0.002)
        assert hourly > daily

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskProfile(sleep_power_w=-1.0)
        with pytest.raises(ValueError):
            TaskProfile().cycle_energy(-1.0)
        with pytest.raises(ValueError):
            TaskProfile().mean_power(0.0, 0.001)


class TestSustainableInterval:
    def test_richer_source_sustains_faster_reporting(self):
        profile = TaskProfile()
        rich = CathodicProtectionSource(nominal_power_w=1e-3)
        poor = CathodicProtectionSource(nominal_power_w=5e-6)
        assert sustainable_interval(rich, profile, 0.002) < sustainable_interval(
            poor, profile, 0.002
        )

    def test_infeasible_returns_inf(self):
        profile = TaskProfile(sleep_power_w=1e-3)  # sleep above harvest
        source = CathodicProtectionSource(nominal_power_w=1e-6)
        assert sustainable_interval(source, profile, 0.002) == float("inf")

    def test_margin_slows_reporting(self):
        profile = TaskProfile()
        source = CathodicProtectionSource()
        tight = sustainable_interval(source, profile, 0.002, margin=1.0)
        safe = sustainable_interval(source, profile, 0.002, margin=4.0)
        assert safe > tight

    def test_bad_margin(self):
        with pytest.raises(ValueError):
            sustainable_interval(
                CathodicProtectionSource(), TaskProfile(), 0.002, margin=0.5
            )


class TestEnergyNeutral:
    def test_paper_design_point_is_neutral_hourly(self):
        # A 500 uW cathodic tap trivially sustains hourly 24-byte
        # reports: the §4.1 design closes its energy budget.
        assert energy_neutral(
            CathodicProtectionSource(), TaskProfile(), units.HOUR, airtime_s=0.0014
        )

    def test_starved_source_not_neutral(self):
        source = CathodicProtectionSource(nominal_power_w=1e-6)
        profile = TaskProfile(sample_energy_j=10e-3)
        assert not energy_neutral(source, profile, units.HOUR, airtime_s=0.4)


class TestStorageSizing:
    def test_outage_scaling(self):
        profile = TaskProfile()
        three = storage_for_outage(profile, units.HOUR, 0.002, units.days(3.0))
        six = storage_for_outage(profile, units.HOUR, 0.002, units.days(6.0))
        assert six == pytest.approx(2.0 * three)

    def test_negative_outage_rejected(self):
        with pytest.raises(ValueError):
            storage_for_outage(TaskProfile(), units.HOUR, 0.002, -1.0)


class TestBudgetReport:
    def test_report_fields(self):
        report = budget_report(
            "cathodic", CathodicProtectionSource(), TaskProfile(), airtime_s=0.0014
        )
        assert report.source_name == "cathodic"
        assert report.viable
        assert report.neutral_at_hourly
        assert report.harvest_uw == pytest.approx(500.0)

    def test_nonviable_report(self):
        report = budget_report(
            "starved",
            CathodicProtectionSource(nominal_power_w=1e-7),
            TaskProfile(),
            airtime_s=0.4,
            interval_s=units.MINUTE,
        )
        assert not report.viable
