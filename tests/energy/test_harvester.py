"""Tests for repro.energy.harvester."""

import pytest

from repro.core import units
from repro.energy import (
    Capacitor,
    CathodicProtectionSource,
    HarvestingSystem,
    TaskProfile,
)


def make_system(power_w=500e-6, capacity=2.0, stored=1.0, **kwargs):
    return HarvestingSystem(
        source=CathodicProtectionSource(nominal_power_w=power_w, noise_fraction=0.0),
        storage=Capacitor(capacity_j=capacity, stored_j=stored),
        **kwargs,
    )


class TestStep:
    def test_harvest_accumulates(self, rng):
        system = make_system(stored=0.0)
        system.step(units.HOUR, rng)
        expected = 500e-6 * 3600 * 0.8  # efficiency-scaled
        assert system.storage.stored_j == pytest.approx(expected, rel=0.05)

    def test_zero_dt_noop(self, rng):
        system = make_system()
        before = system.storage.stored_j
        system.step(0.0, rng)
        assert system.storage.stored_j == before

    def test_negative_dt_rejected(self, rng):
        with pytest.raises(ValueError):
            make_system().step(-1.0, rng)

    def test_sleep_power_drains(self, rng):
        system = make_system(power_w=0.0, stored=1.0)
        system.step(units.DAY, rng)
        assert system.storage.stored_j < 1.0

    def test_starved_system_browns_out(self, rng):
        system = make_system(power_w=0.0, capacity=0.01, stored=0.01)
        system.profile = TaskProfile(sleep_power_w=1e-3)
        for _ in range(30):
            system.step(units.HOUR, rng)
        assert system.browned_out
        assert system.brownouts >= 1


class TestTransmit:
    def test_transmit_debits_storage(self, rng):
        system = make_system(stored=1.0)
        before = system.storage.stored_j
        assert system.try_transmit(airtime_s=0.0014)
        assert system.storage.stored_j < before

    def test_transmit_denied_when_empty(self, rng):
        system = make_system(power_w=0.0, stored=0.0)
        assert not system.try_transmit(airtime_s=0.0014)
        assert system.browned_out

    def test_brownout_recovery_pays_startup_cost(self, rng):
        system = make_system(power_w=0.0, stored=0.0)
        system.try_transmit(0.0014)  # enter brownout
        system.storage.charge(1.0)
        before = system.storage.stored_j
        assert system.try_transmit(0.0014)
        cost = before - system.storage.stored_j
        assert cost > system.profile.cycle_energy(0.0014)

    def test_recovery_records_duration(self, rng):
        system = make_system(power_w=200e-6, capacity=0.5, stored=0.0)
        system.try_transmit(0.0014)
        assert system.browned_out
        for _ in range(48):
            system.step(units.HOUR, rng)
            system._maybe_recover()
        assert not system.browned_out
        assert system.mean_recovery_time > 0.0


class TestDutyCycle:
    def test_healthy_system_full_delivery(self, rng):
        system = make_system()
        result = system.simulate_duty_cycle(
            units.HOUR, 0.0014, units.days(60.0), rng
        )
        assert result.success_rate == 1.0
        assert result.brownouts == 0

    def test_starved_system_partial_delivery(self, rng):
        # A source far below demand: most cycles are energy-denied.
        system = make_system(power_w=1e-6, capacity=0.05, stored=0.05)
        system.profile = TaskProfile(sample_energy_j=5e-3)
        result = system.simulate_duty_cycle(
            units.HOUR, 0.0014, units.days(30.0), rng
        )
        assert 0.0 <= result.success_rate < 0.5
        assert result.brownouts >= 1

    def test_validation(self, rng):
        system = make_system()
        with pytest.raises(ValueError):
            system.simulate_duty_cycle(0.0, 0.001, units.DAY, rng)
        with pytest.raises(ValueError):
            system.simulate_duty_cycle(units.HOUR, 0.001, 0.0, rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HarvestingSystem(
                source=CathodicProtectionSource(),
                storage=Capacitor(capacity_j=1.0),
                conversion_efficiency=0.0,
            )
        with pytest.raises(ValueError):
            HarvestingSystem(
                source=CathodicProtectionSource(),
                storage=Capacitor(capacity_j=1.0),
                brownout_threshold=1.0,
            )
