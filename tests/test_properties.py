"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import concentration, interval_coverage, zipf_mandelbrot_weights
from repro.core import Cohort, FleetTimeline, units
from repro.core.events import EventQueue
from repro.core.rng import RandomStreams
from repro.energy import Capacitor
from repro.net.helium import DataCreditWallet
from repro.radio import Packet
from repro.radio.link import PathLossModel, RadioSpec, packet_success_probability
from repro.radio.lora import LoRaParameters
from repro.reliability import Exponential, LogNormal, Weibull, kaplan_meier

finite_times = st.floats(
    min_value=0.0, max_value=1e10, allow_nan=False, allow_infinity=False
)


class TestEventQueueProperties:
    @given(st.lists(finite_times, min_size=1, max_size=60))
    def test_pop_order_is_nondecreasing(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while not q.empty():
            popped.append(q.pop().time)
        assert popped == sorted(popped)
        assert sorted(popped) == sorted(times)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_streams_reproducible(self, seed, name):
        a = RandomStreams(seed=seed).get(name).random()
        b = RandomStreams(seed=seed).get(name).random()
        assert a == b


class TestDistributionProperties:
    @given(
        st.floats(min_value=0.2, max_value=8.0),
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=0.0, max_value=1e9),
    )
    @settings(max_examples=60)
    def test_weibull_survival_in_unit_interval_and_monotone(self, shape, scale, t):
        d = Weibull(shape=shape, scale=scale)
        s = d.survival(t)
        assert 0.0 <= s <= 1.0
        assert d.survival(t + scale) <= s

    @given(st.floats(min_value=1.0, max_value=1e9), st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=60)
    def test_exponential_memoryless(self, scale, t):
        d = Exponential(scale=scale)
        # S(t + s) = S(t) S(s)
        s = scale / 3.0
        assert d.survival(t + s) == pytest_approx(d.survival(t) * d.survival(s))

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40)
    def test_lognormal_median_invariant(self, median, sigma):
        d = LogNormal(median=median, sigma=sigma)
        assert abs(d.survival(median) - 0.5) < 1e-9


def pytest_approx(x, rel=1e-9):
    import pytest

    return pytest.approx(x, rel=rel, abs=1e-12)


class TestKaplanMeierProperties:
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=50)
    def test_curve_monotone_nonincreasing_within_unit(self, durations):
        curve = kaplan_meier(durations)
        values = list(curve.survival)
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2, max_size=50),
        st.lists(st.booleans(), min_size=2, max_size=50),
    )
    @settings(max_examples=50)
    def test_censoring_never_lowers_survival(self, durations, flags):
        n = min(len(durations), len(flags))
        durations = durations[:n]
        flags = flags[:n]
        censored = kaplan_meier(durations, flags)
        uncensored = kaplan_meier(durations)
        for t in durations:
            assert censored.at(t) >= uncensored.at(t) - 1e-12


class TestCohortProperties:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e8), min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=1e8),
    )
    @settings(max_examples=50)
    def test_alive_count_bounded_and_monotone_in_time(self, lifetimes, t):
        cohort = Cohort(deployed_at=0.0, lifetimes=tuple(lifetimes))
        alive_now = cohort.alive_at(t)
        assert 0 <= alive_now <= cohort.size
        assert cohort.alive_at(t + 1e8) <= alive_now


class TestCapacitorProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(min_value=0.0, max_value=5.0)),
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_stored_energy_always_within_bounds(self, operations):
        cap = Capacitor(capacity_j=3.0)
        for is_charge, amount in operations:
            if is_charge:
                cap.charge(amount)
            else:
                cap.discharge(amount)
            assert 0.0 <= cap.stored_j <= cap.capacity_j + 1e-12

    @given(st.floats(min_value=0.0, max_value=1e7))
    @settings(max_examples=30)
    def test_leak_never_increases(self, dt):
        cap = Capacitor(capacity_j=1.0, stored_j=1.0, leakage_per_day=0.05)
        cap.leak(dt)
        assert cap.stored_j <= 1.0


class TestWalletProperties:
    @given(st.lists(st.integers(min_value=1, max_value=100), max_size=60))
    @settings(max_examples=50)
    def test_conservation(self, debits):
        wallet = DataCreditWallet()
        wallet.provision(1000)
        for amount in debits:
            wallet.debit(amount)
        assert wallet.balance + wallet.spent == 1000
        assert wallet.balance >= 0


class TestPacketProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_credit_units_ceiling_rule(self, payload):
        packet = Packet("d", 0.0, payload_bytes=payload)
        assert packet.credit_units >= 1
        assert (packet.credit_units - 1) * 24 < max(payload, 1) <= packet.credit_units * 24


class TestLinkProperties:
    @given(
        st.floats(min_value=1.0, max_value=50_000.0),
        st.floats(min_value=2.0, max_value=4.0),
    )
    @settings(max_examples=50)
    def test_success_decreases_with_distance(self, distance, exponent):
        spec = RadioSpec("x", 915e6, 14.0, -120.0, 1000.0)
        model = PathLossModel(exponent=exponent, shadowing_sigma_db=0.0)
        near = packet_success_probability(
            spec, spec.tx_power_dbm - model.mean_loss_db(distance, spec.frequency_hz)
        )
        far = packet_success_probability(
            spec,
            spec.tx_power_dbm - model.mean_loss_db(distance * 2.0, spec.frequency_hz),
        )
        assert far <= near


class TestLoRaProperties:
    @given(st.integers(min_value=7, max_value=12), st.integers(min_value=0, max_value=51))
    @settings(max_examples=60)
    def test_airtime_positive_and_sf_monotone(self, sf, payload):
        p = LoRaParameters(spreading_factor=sf)
        airtime = p.airtime_s(payload)
        assert airtime > 0.0
        if sf < 12:
            worse = LoRaParameters(spreading_factor=sf + 1)
            assert worse.airtime_s(payload) > airtime


class TestCoverageProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=99.0), max_size=60),
    )
    @settings(max_examples=50)
    def test_coverage_in_unit_interval(self, arrivals):
        coverage = interval_coverage(arrivals, 0.0, 100.0, interval=10.0)
        assert 0.0 <= coverage <= 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=99.0), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_more_arrivals_never_lower_coverage(self, arrivals):
        base = interval_coverage(arrivals, 0.0, 100.0, interval=10.0)
        more = interval_coverage(arrivals + [50.0], 0.0, 100.0, interval=10.0)
        assert more >= base


class TestZipfProperties:
    @given(
        st.integers(min_value=5, max_value=300),
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50)
    def test_weights_simplex_and_sorted(self, n, exponent, offset):
        weights = zipf_mandelbrot_weights(n, exponent, offset)
        assert abs(weights.sum() - 1.0) < 1e-9
        assert (np.diff(weights) <= 1e-15).all()


class TestConcentrationProperties:
    @given(st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_report_invariants(self, assignments):
        report = concentration(assignments)
        assert report.total_nodes == len(assignments)
        eps = 1e-9
        assert 0.0 < report.top10_share <= 1.0 + eps
        assert report.top1_share <= report.top10_share + eps
        assert 1.0 / report.unique_ases - eps <= report.hhi <= 1.0 + eps
