"""Tests for repro.econ.tipping and repro.econ.credits."""

import pytest

from repro.core.policy import DeploymentPolicy
from repro.econ import (
    TippingPointAnalysis,
    cost_per_device_per_year,
    fleet_prepay_usd,
    paper_credit_count,
    paper_prepay_quote,
)


class TestTippingPoint:
    def test_decision_flips_with_scale(self):
        analysis = TippingPointAnalysis()
        policy = DeploymentPolicy.takeaway_compliant()
        tipping = analysis.tipping_point(policy)
        below = analysis.decision(max(1, tipping - 50), policy)
        above = analysis.decision(tipping + 50, policy)
        assert not below.should_own
        assert above.should_own

    def test_tipping_point_is_minimal(self):
        analysis = TippingPointAnalysis()
        policy = DeploymentPolicy.takeaway_compliant()
        tipping = analysis.tipping_point(policy)
        assert analysis.decision(tipping, policy).should_own
        if tipping > 1:
            assert not analysis.decision(tipping - 1, policy).should_own

    def test_worst_practice_forecloses_owning(self):
        analysis = TippingPointAnalysis()
        policy = DeploymentPolicy.worst_practice()
        decision = analysis.decision(1_000_000, policy)
        assert decision.stranded
        assert not decision.should_own
        assert analysis.tipping_point(policy, max_fleet=10_000) == 10_001

    def test_stateful_gateways_raise_tipping_point(self):
        from repro.core.policy import GatewayRole

        analysis = TippingPointAnalysis()
        router = DeploymentPolicy.takeaway_compliant()
        stateful = DeploymentPolicy(gateway_role=GatewayRole.STATEFUL_CONTROLLER)
        assert analysis.tipping_point(stateful) >= analysis.tipping_point(router)

    def test_gateways_needed_ceiling(self):
        analysis = TippingPointAnalysis(devices_per_gateway=250)
        assert analysis.gateways_needed(1) == 1
        assert analysis.gateways_needed(250) == 1
        assert analysis.gateways_needed(251) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TippingPointAnalysis().gateways_needed(0)


class TestCredits:
    def test_paper_count(self):
        # §4.4: one packet per hour for 50 years = 438,000 credits.
        assert paper_credit_count() == 438_000

    def test_paper_quote(self):
        quote = paper_prepay_quote()
        assert quote.credits_needed == 438_000
        assert quote.credits_provisioned == 500_000
        assert quote.cost_usd == pytest.approx(5.0)
        assert quote.covers_schedule

    def test_faster_reporting_costs_more(self):
        hourly = paper_credit_count(packets_per_hour=1.0)
        per_10min = paper_credit_count(packets_per_hour=6.0)
        assert per_10min == 6 * hourly

    def test_cost_per_device_year(self):
        # Hourly 24-byte packets: 8,760 credits/yr at $1e-5 = ~$0.09/yr.
        assert cost_per_device_per_year() == pytest.approx(0.0876)

    def test_fleet_prepay_is_noise_at_scale(self):
        # 10,000 devices prepaid for 50 years: ~$50k.
        total = fleet_prepay_usd(10_000)
        assert total == pytest.approx(50_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            paper_credit_count(years=0.0)
        with pytest.raises(ValueError):
            paper_prepay_quote(headroom=-0.1)
        with pytest.raises(ValueError):
            fleet_prepay_usd(0)
        with pytest.raises(ValueError):
            cost_per_device_per_year(packets_per_hour=0.0)
