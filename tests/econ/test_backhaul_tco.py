"""Tests for repro.econ.backhaul_tco."""

import pytest

from repro.econ import CellularCosts, FiberCosts, crossover_year, tco_series


class TestFiberCosts:
    def test_capex_dominated_by_trench(self):
        fiber = FiberCosts()
        trench_part = fiber.trench_usd_per_km * fiber.km_per_gateway * fiber.trench_share
        assert trench_part > fiber.terminal_usd_per_gateway

    def test_trench_share_scales_capex(self):
        full = FiberCosts(trench_share=1.0).capex(10)
        half = FiberCosts(trench_share=0.5).capex(10)
        assert half < full

    def test_transceiver_refreshes_counted(self):
        fiber = FiberCosts(transceiver_refresh_years=10.0, transceiver_usd=500.0)
        at_9 = fiber.cumulative(1, 9.0)
        at_11 = fiber.cumulative(1, 11.0)
        assert at_11 - at_9 > 500.0  # one refresh plus opex

    def test_validation(self):
        with pytest.raises(ValueError):
            FiberCosts(trench_share=0.0)
        with pytest.raises(ValueError):
            FiberCosts().capex(-1)
        with pytest.raises(ValueError):
            FiberCosts().cumulative(1, -1.0)


class TestCellularCosts:
    def test_low_capex(self):
        assert CellularCosts().capex(10) < FiberCosts().capex(10)

    def test_sunset_swaps_counted(self):
        cell = CellularCosts(sunset_interval_years=10.0, sunset_swap_usd_per_gateway=400.0)
        before = cell.cumulative(1, 9.0)
        after = cell.cumulative(1, 11.0)
        assert after - before > 400.0

    def test_subscription_dominates_long_run(self):
        cell = CellularCosts()
        fifty = cell.cumulative(1, 50.0)
        subs = cell.subscription_usd_per_gateway_year * 50.0
        assert subs / fifty > 0.8


class TestTcoComparison:
    def test_cellular_cheaper_early(self):
        points = tco_series(gateways=100, horizon_years=50.0)
        assert not points[1].fiber_wins  # year ~1: cellular ahead

    def test_fiber_wins_long_run_default(self):
        # §3.3's argument: coordinated-dig fiber overtakes subscriptions
        # well inside a 50-year horizon.
        year = crossover_year(100)
        assert 5.0 < year < 35.0

    def test_greenfield_fiber_never_crosses(self):
        fiber = FiberCosts(km_per_gateway=0.8, trench_share=1.0)
        assert crossover_year(100, fiber=fiber) == float("inf")

    def test_sharing_accelerates_crossover(self):
        shared = crossover_year(100, fiber=FiberCosts(trench_share=0.25))
        solo = crossover_year(100, fiber=FiberCosts(trench_share=1.0))
        assert shared < solo

    def test_series_monotone(self):
        points = tco_series(gateways=10, horizon_years=20.0)
        fibers = [p.fiber_usd for p in points]
        cells = [p.cellular_usd for p in points]
        assert fibers == sorted(fibers)
        assert cells == sorted(cells)

    def test_costs_scale_with_gateways(self):
        small = tco_series(10, 10.0)[-1]
        large = tco_series(100, 10.0)[-1]
        assert large.fiber_usd == pytest.approx(10 * small.fiber_usd)

    def test_validation(self):
        with pytest.raises(ValueError):
            tco_series(0)
        with pytest.raises(ValueError):
            tco_series(1, horizon_years=0.0)
