"""Tests for repro.econ.lifecycle and repro.econ.sharing."""

import math

import pytest

from repro.econ import (
    CostParameters,
    DeviceStrategy,
    SharingComparison,
    breakeven_premium,
    compare_sharing,
    coverage_fraction,
    gateways_for_coverage,
    strategy_cost,
)


def battery(unit=150.0, life=10.0):
    return DeviceStrategy("battery", unit, life)


class TestStrategyCost:
    def test_replacements_counted(self):
        cost = strategy_cost(battery(life=10.0), horizon_years=50.0)
        assert cost.expected_replacements == pytest.approx(4.0)

    def test_no_replacement_within_lifetime(self):
        cost = strategy_cost(battery(life=60.0), horizon_years=50.0)
        assert cost.expected_replacements == 0.0

    def test_longer_life_cheaper_long_run(self):
        short = strategy_cost(battery(life=5.0), 50.0)
        long = strategy_cost(battery(life=40.0), 50.0)
        assert long.total_usd < short.total_usd

    def test_per_year_normalization(self):
        cost = strategy_cost(battery(), 50.0)
        assert cost.usd_per_sensing_year == pytest.approx(cost.total_usd / 50.0)

    def test_discounting_reduces_future_spend(self):
        plain = strategy_cost(battery(life=5.0), 50.0)
        discounted = strategy_cost(battery(life=5.0), 50.0, discount_rate=0.05)
        assert discounted.total_usd < plain.total_usd

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceStrategy("x", -1.0, 10.0)
        with pytest.raises(ValueError):
            DeviceStrategy("x", 1.0, 0.0)
        with pytest.raises(ValueError):
            strategy_cost(battery(), 0.0)
        with pytest.raises(ValueError):
            strategy_cost(battery(), 10.0, discount_rate=-0.1)


class TestBreakevenPremium:
    def test_breakeven_equalizes_costs(self):
        base = battery()
        premium = breakeven_premium(base, harvesting_lifetime_years=32.0,
                                    horizon_years=50.0)
        harvesting = DeviceStrategy(
            "harvesting", premium * base.unit_cost_usd, 32.0
        )
        a = strategy_cost(base, 50.0).total_usd
        b = strategy_cost(harvesting, 50.0).total_usd
        assert b == pytest.approx(a, rel=0.01)

    def test_premium_exceeds_one_over_long_horizon(self):
        # §1's ROI argument: long-lived hardware is worth a multiple.
        premium = breakeven_premium(battery(), 32.0, 50.0)
        assert premium > 2.0

    def test_longer_horizon_larger_premium(self):
        short = breakeven_premium(battery(), 32.0, 15.0)
        long = breakeven_premium(battery(), 32.0, 60.0)
        assert long > short

    def test_validation(self):
        with pytest.raises(ValueError):
            breakeven_premium(battery(), 0.0, 50.0)


class TestCoverage:
    def test_boolean_model(self):
        # lambda*pi*R^2 = 100 * pi*0.04 / 10 -> 1 - exp(-1.2566).
        expected = 1.0 - math.exp(-100 * math.pi * 0.04 / 10.0)
        assert coverage_fraction(100, 10.0, 200.0) == pytest.approx(expected)

    def test_zero_gateways(self):
        assert coverage_fraction(0, 10.0, 200.0) == 0.0

    def test_monotone_in_gateways(self):
        assert coverage_fraction(200, 10.0, 200.0) > coverage_fraction(
            100, 10.0, 200.0
        )

    def test_inverse_roundtrip(self):
        n = gateways_for_coverage(0.95, 50.0, 300.0)
        assert coverage_fraction(n, 50.0, 300.0) >= 0.95
        assert coverage_fraction(n - 1, 50.0, 300.0) < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_fraction(-1, 10.0, 100.0)
        with pytest.raises(ValueError):
            gateways_for_coverage(1.0, 10.0, 100.0)


class TestSharing:
    def test_saving_scales_with_vendors(self):
        four = compare_sharing(vendors=4)
        two = compare_sharing(vendors=2)
        assert four.hardware_saving > two.hardware_saving
        assert four.hardware_saving == pytest.approx(0.75)

    def test_single_vendor_no_saving(self):
        assert compare_sharing(vendors=1).hardware_saving == 0.0

    def test_capex_proportional(self):
        result = compare_sharing(vendors=3)
        assert result.capex_siloed_usd == pytest.approx(
            3 * result.capex_shared_usd
        )

    def test_pooled_coverage_improves(self):
        result = compare_sharing(vendors=4, target_coverage=0.9)
        assert result.coverage_if_pooled > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_sharing(vendors=0)
