"""Tests for repro.econ.costs."""

import pytest

from repro.econ import AmortizationSchedule, CostParameters, present_value


class TestCostParameters:
    def test_san_diego_scale_lands_in_millions(self):
        # §2: "the cost for deployment for even a few thousand sensors
        # can range into millions of dollars."
        costs = CostParameters()
        total = costs.initial_deployment_usd(devices=3_300, gateways=20)
        assert 1e6 < total < 10e6

    def test_replacement_cost_components(self):
        costs = CostParameters(
            device_hardware_usd=100.0,
            truck_roll_usd=200.0,
            labor_usd_per_hour=60.0,
            replacement_minutes=20.0,
        )
        assert costs.device_replacement_usd() == pytest.approx(100 + 200 + 20.0)

    def test_fleet_replacement_scales(self):
        costs = CostParameters()
        assert costs.fleet_replacement_usd(200) == 2 * costs.fleet_replacement_usd(100)

    def test_fleet_person_hours_matches_paper_rule(self):
        costs = CostParameters(replacement_minutes=20.0)
        assert costs.fleet_replacement_person_hours(591_315) == pytest.approx(
            197_105.0
        )

    def test_annual_maintenance(self):
        costs = CostParameters()
        # 100 devices, 10-year MTBF -> 10 replacements/year.
        annual = costs.annual_maintenance_usd(100, device_mtbf_years=10.0)
        assert annual == pytest.approx(10 * costs.device_replacement_usd())

    def test_validation(self):
        with pytest.raises(ValueError):
            CostParameters(device_hardware_usd=-1.0)
        with pytest.raises(ValueError):
            CostParameters(replacement_minutes=0.0)
        with pytest.raises(ValueError):
            CostParameters().initial_deployment_usd(-1, 0)
        with pytest.raises(ValueError):
            CostParameters().annual_maintenance_usd(10, 0.0)


class TestAmortization:
    def test_annual(self):
        schedule = AmortizationSchedule(capex_usd=1000.0, service_life_years=10.0)
        assert schedule.annual_usd == 100.0

    def test_remaining_value(self):
        schedule = AmortizationSchedule(capex_usd=1000.0, service_life_years=10.0)
        assert schedule.remaining_value(5.0) == 500.0
        assert schedule.remaining_value(20.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AmortizationSchedule(capex_usd=-1.0, service_life_years=1.0)
        with pytest.raises(ValueError):
            AmortizationSchedule(capex_usd=1.0, service_life_years=0.0)
        with pytest.raises(ValueError):
            AmortizationSchedule(1.0, 1.0).remaining_value(-1.0)


class TestPresentValue:
    def test_zero_discount_is_linear(self):
        assert present_value(100.0, 10.0, discount_rate=0.0) == 1000.0

    def test_discounting_reduces(self):
        assert present_value(100.0, 50.0, 0.03) < 5000.0

    def test_fifty_year_pv_converges(self):
        # At 3 %, a 50-year stream is worth ~78 % of its nominal total.
        pv = present_value(100.0, 50.0, 0.03)
        assert pv == pytest.approx(100.0 * (1 - 2.718281828**-1.5) / 0.03, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            present_value(1.0, -1.0)
        with pytest.raises(ValueError):
            present_value(1.0, 1.0, discount_rate=-0.1)
