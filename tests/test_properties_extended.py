"""Property-based tests for the extension modules: channel contention,
trust, sharing economics, lifecycle costs, and succession."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.econ import (
    CostParameters,
    DeviceStrategy,
    compare_sharing,
    coverage_fraction,
    gateways_for_coverage,
    strategy_cost,
)
from repro.experiment import SuccessionConfig, SuccessionModel
from repro.net.trust import TrustLevel, TrustPolicy, TrustRegistry
from repro.radio.channel import ChannelLoad, max_devices_for_reliability


class TestChannelProperties:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=60.0, max_value=1e6),
    )
    @settings(max_examples=60)
    def test_delivery_probability_in_unit_interval(self, devices, airtime, interval):
        p = ChannelLoad(devices, airtime, interval).delivery_probability()
        assert 0.0 <= p <= 1.0

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=60.0, max_value=1e6),
    )
    @settings(max_examples=60)
    def test_more_devices_never_help(self, devices, airtime, interval):
        fewer = ChannelLoad(devices, airtime, interval).delivery_probability()
        more = ChannelLoad(devices * 2, airtime, interval).delivery_probability()
        assert more <= fewer

    @given(
        st.floats(min_value=1e-4, max_value=2.0),
        st.floats(min_value=60.0, max_value=1e6),
        st.floats(min_value=0.5, max_value=0.99),
    )
    @settings(max_examples=60)
    def test_capacity_meets_its_own_target(self, airtime, interval, target):
        n = max_devices_for_reliability(airtime, interval, target)
        if n > 0:
            p = ChannelLoad(n, airtime, interval).delivery_probability()
            assert p >= target - 1e-6


class TestTrustProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_census_partitions_fleet(self, n, year):
        registry = TrustRegistry(
            policy=TrustPolicy(key_leak_rate_per_year=0.01),
            rng=np.random.default_rng(7),
        )
        for index in range(n):
            registry.commission(f"d{index}", "ed25519")
        census = registry.census(units.years(float(year)))
        assert sum(census.values()) == n
        assert all(count >= 0 for count in census.values())

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_trusted_fraction_never_recovers(self, n):
        # Trust is monotone non-increasing: immutable devices cannot be
        # re-keyed, so verdicts only ever get worse.
        registry = TrustRegistry(
            policy=TrustPolicy(key_leak_rate_per_year=0.01),
            rng=np.random.default_rng(11),
        )
        for index in range(n):
            registry.commission(f"d{index}", "aes128-cmac")
        fractions = [
            registry.trusted_fraction(units.years(float(y)))
            for y in range(0, 60, 5)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))


class TestSharingProperties:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=50.0, max_value=2000.0),
    )
    @settings(max_examples=60)
    def test_coverage_in_unit_interval(self, gateways, area, radius):
        c = coverage_fraction(gateways, area, radius)
        assert 0.0 <= c < 1.0 or c == pytest.approx(1.0)

    @given(
        st.floats(min_value=0.05, max_value=0.99),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=50.0, max_value=2000.0),
    )
    @settings(max_examples=60)
    def test_inverse_is_tight(self, target, area, radius):
        n = gateways_for_coverage(target, area, radius)
        assert coverage_fraction(n, area, radius) >= target - 1e-9
        if n > 1:
            assert coverage_fraction(n - 1, area, radius) < target

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=30)
    def test_sharing_saving_formula(self, vendors):
        result = compare_sharing(vendors=vendors)
        assert result.hardware_saving == pytest.approx(1.0 - 1.0 / vendors)


class TestLifecycleProperties:
    @given(
        st.floats(min_value=10.0, max_value=2000.0),
        st.floats(min_value=1.0, max_value=60.0),
        st.floats(min_value=5.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_cost_positive_and_replacements_consistent(self, unit, life, horizon):
        strategy = DeviceStrategy("x", unit, life)
        cost = strategy_cost(strategy, horizon)
        assert cost.total_usd > 0.0
        assert cost.expected_replacements == pytest.approx(
            max(0.0, horizon / life - 1.0)
        )

    @given(
        st.floats(min_value=10.0, max_value=2000.0),
        st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=40)
    def test_longer_life_never_costs_more(self, unit, life):
        short = strategy_cost(DeviceStrategy("s", unit, life), 50.0)
        long = strategy_cost(DeviceStrategy("l", unit, life * 2.0), 50.0)
        assert long.total_usd <= short.total_usd + 1e-9


class TestSuccessionProperties:
    @given(st.integers(min_value=1, max_value=80), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_timeline_contiguous_and_knowledge_monotone(self, years, seed):
        model = SuccessionModel(config=SuccessionConfig(handoff_retention=0.8))
        rng = np.random.default_rng(seed)
        custodians = model.generate(units.years(float(years)), rng)
        assert custodians[0].starts_at == 0.0
        assert custodians[-1].ends_at == units.years(float(years))
        for a, b in zip(custodians, custodians[1:]):
            assert a.ends_at == b.starts_at
        samples = [
            model.knowledge_at(units.years(float(y)))
            for y in range(0, years + 1, max(1, years // 8))
        ]
        assert all(a >= b - 1e-12 for a, b in zip(samples, samples[1:]))
