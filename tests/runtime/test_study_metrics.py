"""Regression: study failure counts must survive into --metrics output.

``MonteCarloStudy.failures`` used to be invisible in the metrics JSONL —
a study with poisoned seeds serialized identically to a clean one.  The
merged line's meta now carries the failure count, through the one
serializer (`study_metrics_entries`) the CLI and the service share.
"""

import json
from dataclasses import dataclass

from repro.core import units
from repro.obs import write_metrics
from repro.runtime import MonteCarloRunner, ScenarioTask, study_metrics_entries


@dataclass(frozen=True)
class _FlakyScenario:
    """Delegates to a real ScenarioTask, but poisons one run index."""

    task: ScenarioTask
    poisoned_index: int

    def __call__(self, index: int, seed: int):
        if index == self.poisoned_index:
            raise ValueError(f"poisoned seed {seed}")
        return self.task(index, seed)


def _tiny_task() -> ScenarioTask:
    return ScenarioTask(
        scenario="owned-only",
        horizon=units.years(0.1),
        report_interval=units.days(2.0),
    )


def test_merged_meta_reports_zero_failures():
    study = MonteCarloRunner(_tiny_task(), runs=2, workers=1).run()
    per_run, (meta, _snapshot) = study_metrics_entries(study)
    assert len(per_run) == 2
    assert meta == {
        "merged": True,
        "runs": 2,
        "base_seed": study.base_seed,
        "failures": 0,
    }


def test_failed_runs_counted_in_metrics_jsonl(tmp_path):
    flaky = _FlakyScenario(task=_tiny_task(), poisoned_index=1)
    study = MonteCarloRunner(flaky, runs=3, workers=1).run()
    assert len(study.failures) == 1
    assert len(study.runs) == 2

    per_run, (meta, _snapshot) = study_metrics_entries(study)
    # Only successful runs get per-run lines; the merged meta says why
    # there are fewer of them than were scheduled.
    assert len(per_run) == 2
    assert meta["runs"] == 2
    assert meta["failures"] == 1

    path = tmp_path / "mc.jsonl"
    write_metrics(str(path), per_run, merged=(meta, study.merged_metrics()))
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    merged_line = json.loads(lines[-1])
    assert merged_line["failures"] == 1
    assert merged_line["merged"] is True
