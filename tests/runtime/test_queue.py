"""Tests for repro.runtime.queue — the dynamic work-queue scheduler."""

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.runtime import (
    MonteCarloExecutionError,
    MonteCarloRunner,
    execute_runs,
    resolve_workers,
)
from repro.runtime.queue import MAX_CHUNK, static_chunksize
from repro.runtime.runner import _execute, derive_seeds


def _pairs(runs, base_seed=7):
    return list(zip(range(runs), derive_seeds(base_seed, runs)))


def _float_task(index: int, seed: int) -> float:
    """Module-level picklable task: deterministic in (index, seed)."""
    return (seed % 997) / 997.0


def _poisoned_task(index: int, seed: int) -> float:
    if index == 3:
        raise ValueError("poisoned seed")
    return float(index)


def _always_fails(index: int, seed: int) -> float:
    raise RuntimeError("nothing works")


@dataclass(frozen=True)
class _ExitOnce:
    """Kills its worker process the first time it sees ``kill_index``.

    A sentinel file records the first attempt, so the re-executed run
    succeeds — modeling a transient worker death (OOM kill, segfault).
    """

    sentinel_dir: str
    kill_index: int

    def __call__(self, index: int, seed: int) -> float:
        if index == self.kill_index:
            marker = Path(self.sentinel_dir) / f"{index}.tried"
            if not marker.exists():
                marker.write_text("tried")
                os._exit(13)
        return float(index)


@dataclass(frozen=True)
class _AlwaysExits:
    """Kills its worker process every time it sees ``kill_index``."""

    kill_index: int

    def __call__(self, index: int, seed: int) -> float:
        if index == self.kill_index:
            os._exit(13)
        return float(index)


def _pool_available() -> bool:
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result() == 1
    except Exception:
        return False


needs_pool = pytest.mark.skipif(
    not _pool_available(), reason="process pools unavailable on this platform"
)


class TestResolveWorkers:
    def test_zero_means_one_per_cpu(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_positive_passes_through(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestSerialExecution:
    def test_results_in_index_order(self):
        report = execute_runs(_execute, _float_task, _pairs(6), workers=1)
        assert [r.index for r in report.results] == list(range(6))
        assert report.stats.mode == "serial"

    def test_one_result_resident_at_a_time(self):
        report = execute_runs(_execute, _float_task, _pairs(50), workers=1)
        assert report.stats.peak_resident_results == 1

    def test_streaming_consume_in_order(self):
        seen = []
        report = execute_runs(
            _execute, _float_task, _pairs(8), workers=1, consume=seen.append
        )
        assert report.results == []
        assert [r.index for r in seen] == list(range(8))


class TestFailureCapture:
    """Satellite: one poisoned run must not abort the study."""

    def test_serial_poisoned_run_is_recorded(self):
        report = execute_runs(_execute, _poisoned_task, _pairs(6), workers=1)
        assert [r.index for r in report.results] == [0, 1, 2, 4, 5]
        assert len(report.failures) == 1
        failed = report.failures[0]
        assert failed.index == 3
        assert "ValueError: poisoned seed" in failed.error
        assert "poisoned seed" in failed.traceback

    @needs_pool
    def test_pool_poisoned_run_is_recorded(self):
        report = execute_runs(_execute, _poisoned_task, _pairs(6), workers=2)
        assert [r.index for r in report.results] == [0, 1, 2, 4, 5]
        assert [f.index for f in report.failures] == [3]

    def test_study_surfaces_failures(self):
        study = MonteCarloRunner(
            _poisoned_task, runs=6, base_seed=7, workers=1
        ).run()
        assert len(study.runs) == 5
        assert len(study.failures) == 1
        assert study.failures[0].index == 3
        assert study.uptime.runs == 5
        text = "\n".join(study.summary_lines())
        assert "1 run(s) failed" in text
        assert "ValueError" in text

    def test_all_failed_raises(self):
        with pytest.raises(MonteCarloExecutionError) as excinfo:
            MonteCarloRunner(_always_fails, runs=3, base_seed=7).run()
        assert "all 3 runs failed" in str(excinfo.value)
        assert "RuntimeError" in str(excinfo.value)

    def test_failure_seed_matches_schedule(self):
        report = execute_runs(_execute, _poisoned_task, _pairs(6), workers=1)
        assert report.failures[0].seed == derive_seeds(7, 6)[3]


class TestPoolExecution:
    @needs_pool
    def test_matches_serial(self):
        serial = execute_runs(_execute, _float_task, _pairs(16), workers=1)
        pooled = execute_runs(_execute, _float_task, _pairs(16), workers=2)
        assert [r.sample for r in pooled.results] == [
            r.sample for r in serial.results
        ]
        assert pooled.stats.mode == "pool"

    @needs_pool
    def test_adaptive_chunking_batches_fast_runs(self):
        report = execute_runs(_execute, _float_task, _pairs(64), workers=2)
        # Sub-millisecond runs must coalesce: far fewer chunks than runs,
        # and the chunk size must have grown past the initial 1.
        assert report.stats.dispatched_chunks < 64
        assert 1 < report.stats.max_chunk_size <= MAX_CHUNK

    @needs_pool
    def test_streaming_bounded_window(self):
        seen = []
        report = execute_runs(
            _execute, _float_task, _pairs(200), workers=2, consume=seen.append
        )
        assert [r.index for r in seen] == list(range(200))
        # The reorder window is O(workers x chunk), never O(runs).
        assert report.stats.peak_resident_results <= 4 * MAX_CHUNK
        assert report.stats.peak_resident_results < 100


class TestBrokenPoolRecovery:
    """Tentpole: a dead worker re-executes only the lost indices."""

    @needs_pool
    def test_transient_worker_death_recovers_all_runs(self, tmp_path):
        task = _ExitOnce(sentinel_dir=str(tmp_path), kill_index=4)
        report = execute_runs(_execute, task, _pairs(8), workers=2)
        assert [r.index for r in report.results] == list(range(8))
        assert report.failures == []
        assert report.stats.pool_rebuilds >= 1
        assert report.stats.reexecuted_indices >= 1

    @needs_pool
    def test_persistent_worker_death_fails_only_that_index(self):
        task = _AlwaysExits(kill_index=2)
        report = execute_runs(_execute, task, _pairs(6), workers=2)
        assert [f.index for f in report.failures] == [2]
        assert "worker process died" in report.failures[0].error
        assert [r.index for r in report.results] == [0, 1, 3, 4, 5]


class TestStaticChunksize:
    def test_pr3_formula_preserved(self):
        assert static_chunksize(100, 4) == 7
        assert static_chunksize(1, 8) == 1
