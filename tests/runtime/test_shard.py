"""Tests for repro.runtime.shard — artifacts, manifests, exact merge."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.faults import FaultPlan, KillFault, Selector
from repro.obs import snapshot_json
from repro.runtime import (
    SHARD_FORMAT_VERSION,
    MonteCarloRunner,
    ScenarioTask,
    ShardError,
    derive_seeds,
    load_shard,
    merge_shards,
    read_manifest,
    run_shard,
    shard_indices,
    task_fingerprint,
)

FAST = dict(horizon=units.years(1.0), report_interval=units.days(7.0))


def _float_task(index: int, seed: int) -> float:
    return (seed % 997) / 997.0


def _tiny_plan() -> FaultPlan:
    return FaultPlan(
        name="shard-test",
        specs=(
            KillFault(
                at=units.days(30.0),
                select=Selector(by="k-random", tier="device", k=1),
            ),
        ),
    )


class TestSeedScheduleSharding:
    """Satellite: shard slices must tile the unsharded schedule."""

    @settings(max_examples=40, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=2**32 - 1),
        runs=st.integers(min_value=1, max_value=60),
        nshards=st.integers(min_value=1, max_value=8),
    )
    def test_shard_slices_tile_the_schedule(self, base_seed, runs, nshards):
        schedule = derive_seeds(base_seed, runs)
        tiled = {}
        for shard in range(nshards):
            for k in shard_indices(runs, shard, nshards):
                assert k not in tiled, "slices must be disjoint"
                tiled[k] = schedule[k]
        assert sorted(tiled) == list(range(runs))
        assert [tiled[k] for k in range(runs)] == schedule

    @settings(max_examples=40, deadline=None)
    @given(
        base_seed=st.integers(min_value=0, max_value=2**32 - 1),
        runs=st.integers(min_value=1, max_value=60),
        n_a=st.integers(min_value=1, max_value=8),
        n_b=st.integers(min_value=1, max_value=8),
    )
    def test_seed_never_depends_on_shard_count(self, base_seed, runs, n_a, n_b):
        """The seed of global index k is a function of (base_seed, k) only."""
        schedule = derive_seeds(base_seed, runs)
        for nshards in (n_a, n_b):
            for shard in range(nshards):
                for k in shard_indices(runs, shard, nshards):
                    assert schedule[k] == derive_seeds(base_seed, runs)[k]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_indices(0, 0, 1)
        with pytest.raises(ValueError):
            shard_indices(4, 2, 2)
        with pytest.raises(ValueError):
            shard_indices(4, -1, 2)
        with pytest.raises(ValueError):
            shard_indices(4, 0, 0)


class TestTaskFingerprint:
    def test_stable_for_equal_tasks(self):
        a = ScenarioTask("owned-only", **FAST)
        b = ScenarioTask("owned-only", **FAST)
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_differs_on_overrides(self):
        a = ScenarioTask("owned-only", **FAST)
        b = ScenarioTask(
            "owned-only", overrides=(("n_lora_devices", 0),), **FAST
        )
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_covers_the_fault_plan(self):
        a = ScenarioTask("owned-only", **FAST)
        b = ScenarioTask("owned-only", faults=_tiny_plan(), **FAST)
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_plain_function_falls_back_to_qualname(self):
        digest = task_fingerprint(_float_task)
        assert digest.startswith("sha256:")
        assert digest == task_fingerprint(_float_task)


class TestShardArtifact:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "s0.mcr"
        report = run_shard(
            _float_task, runs=10, base_seed=9, shard=0, nshards=2,
            out_path=str(path), workers=1,
        )
        assert report.completed == 5
        assert report.failed == 0
        manifest, results, failures = load_shard(str(path))
        assert manifest.version == SHARD_FORMAT_VERSION
        assert manifest.indices == (0, 2, 4, 6, 8)
        assert failures == []
        schedule = derive_seeds(9, 10)
        for run in results:
            assert run.seed == schedule[run.index]
            assert run.sample == _float_task(run.index, run.seed)

    def test_manifest_readable_alone(self, tmp_path):
        path = tmp_path / "s0.mcr"
        run_shard(
            _float_task, runs=6, base_seed=1, shard=1, nshards=3,
            out_path=str(path), workers=1,
        )
        manifest = read_manifest(str(path))
        assert manifest.shard == 1
        assert manifest.nshards == 3
        assert manifest.indices == (1, 4)
        assert manifest.task_digest == task_fingerprint(_float_task)

    def test_corrupt_body_is_rejected(self, tmp_path):
        path = tmp_path / "s0.mcr"
        run_shard(
            _float_task, runs=4, base_seed=1, shard=0, nshards=1,
            out_path=str(path), workers=1,
        )
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace('"sample":0.', '"sample":1.', 1)
        path.write_text("".join(lines))
        with pytest.raises(ShardError, match="content hash mismatch"):
            load_shard(str(path))

    def test_truncated_artifact_is_rejected(self, tmp_path):
        path = tmp_path / "s0.mcr"
        run_shard(
            _float_task, runs=4, base_seed=1, shard=0, nshards=1,
            out_path=str(path), workers=1,
        )
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))  # drop the footer
        with pytest.raises(ShardError, match="no footer"):
            load_shard(str(path))

    def test_not_a_shard_file(self, tmp_path):
        path = tmp_path / "bogus.mcr"
        path.write_text(json.dumps({"kind": "something"}) + "\n")
        with pytest.raises(ShardError, match="mcr-header"):
            read_manifest(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.mcr"
        header = {
            "kind": "mcr-header", "version": 99, "task_digest": "sha256:x",
            "label": "x", "base_seed": 1, "runs": 1, "shard": 0,
            "nshards": 1, "indices": [0],
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ShardError, match="version 99"):
            read_manifest(str(path))


def _write_partition(tmp_path, runs, nshards, base_seed=9, workers=1):
    paths = []
    for shard in range(nshards):
        path = tmp_path / f"s{shard}.mcr"
        run_shard(
            _float_task, runs=runs, base_seed=base_seed, shard=shard,
            nshards=nshards, out_path=str(path), workers=workers,
        )
        paths.append(str(path))
    return paths


class TestMergeValidation:
    def test_rejects_duplicate_shard(self, tmp_path):
        paths = _write_partition(tmp_path, runs=6, nshards=2)
        with pytest.raises(ShardError, match="disjoint"):
            merge_shards([paths[0], paths[0]])

    def test_rejects_incomplete_cover(self, tmp_path):
        paths = _write_partition(tmp_path, runs=6, nshards=3)
        with pytest.raises(ShardError, match="do not cover"):
            merge_shards(paths[:2])

    def test_rejects_base_seed_mismatch(self, tmp_path):
        a = tmp_path / "a.mcr"
        b = tmp_path / "b.mcr"
        run_shard(_float_task, runs=4, base_seed=1, shard=0, nshards=2,
                  out_path=str(a), workers=1)
        run_shard(_float_task, runs=4, base_seed=2, shard=1, nshards=2,
                  out_path=str(b), workers=1)
        with pytest.raises(ShardError, match="base_seed mismatch"):
            merge_shards([str(a), str(b)])

    def test_rejects_task_digest_mismatch(self, tmp_path):
        a = tmp_path / "a.mcr"
        b = tmp_path / "b.mcr"
        run_shard(_float_task, runs=4, base_seed=1, shard=0, nshards=2,
                  out_path=str(a), workers=1)
        task = ScenarioTask("owned-only", **FAST)
        run_shard(task, runs=4, base_seed=1, shard=1, nshards=2,
                  out_path=str(b), workers=1, label="x")
        with pytest.raises(ShardError, match="task_digest mismatch"):
            merge_shards([str(a), str(b)])

    def test_rejects_empty_input(self):
        with pytest.raises(ShardError, match="no shard artifacts"):
            merge_shards([])


class TestMergeExactness:
    """Acceptance: any partition merges bit-identical to workers=1."""

    def _reference(self, runs=12, base_seed=9):
        return MonteCarloRunner(
            _float_task, runs=runs, base_seed=base_seed, workers=1
        ).run()

    @pytest.mark.parametrize("nshards", [1, 2, 3, 12])
    def test_partitions_merge_identically(self, tmp_path, nshards):
        reference = self._reference()
        paths = _write_partition(tmp_path, runs=12, nshards=nshards)
        merged = merge_shards(paths)
        assert dataclasses.asdict(merged.uptime) == dataclasses.asdict(
            reference.uptime
        )
        assert [r.sample for r in merged.runs] == [
            r.sample for r in reference.runs
        ]
        assert [r.seed for r in merged.runs] == [
            r.seed for r in reference.runs
        ]
        assert merged.merged_metrics() == reference.merged_metrics()

    def test_scenario_task_full_fidelity(self, tmp_path):
        """Metrics, fault streams, and uptime survive the disk round trip
        bit-for-bit for a real scenario with an installed fault plan."""
        task = ScenarioTask("owned-only", faults=_tiny_plan(), **FAST)
        reference = MonteCarloRunner(
            task, runs=4, base_seed=100, workers=1
        ).run()
        paths = []
        for shard in range(2):
            path = tmp_path / f"s{shard}.mcr"
            run_shard(
                task, runs=4, base_seed=100, shard=shard, nshards=2,
                out_path=str(path), workers=1,
            )
            paths.append(str(path))
        merged = merge_shards(paths)
        assert dataclasses.asdict(merged.uptime) == dataclasses.asdict(
            reference.uptime
        )
        for ours, theirs in zip(merged.runs, reference.runs):
            assert ours.index == theirs.index
            assert ours.seed == theirs.seed
            assert ours.sample == theirs.sample
            assert ours.fault_stream == theirs.fault_stream
            assert ours.metrics == theirs.metrics
            # Canonical serialization agrees byte-for-byte too.
            assert snapshot_json(ours.metrics) == snapshot_json(theirs.metrics)
        assert merged.total_faults_fired == reference.total_faults_fired


class TestBoundedMemory:
    """Acceptance: shard execution streams; resident results stay O(workers)."""

    def test_serial_shard_holds_one_result(self, tmp_path):
        report = run_shard(
            _float_task, runs=220, base_seed=3, shard=0, nshards=1,
            out_path=str(tmp_path / "s.mcr"), workers=1,
        )
        assert report.completed == 220
        assert report.stats.peak_resident_results == 1

    def test_pooled_shard_window_stays_small(self, tmp_path):
        report = run_shard(
            _float_task, runs=220, base_seed=3, shard=0, nshards=1,
            out_path=str(tmp_path / "s.mcr"), workers=2,
        )
        assert report.completed == 220
        # O(workers x chunk) — far below the 220 runs in the study.
        assert report.stats.peak_resident_results < 110
        _manifest, results, _failures = load_shard(str(tmp_path / "s.mcr"))
        assert [r.index for r in results] == list(range(220))
