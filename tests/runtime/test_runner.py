"""Tests for repro.runtime — the deterministic parallel MC layer."""

import dataclasses

import pytest

from repro.core import units
from repro.core.rng import RandomStreams
from repro.runtime import (
    MonteCarloRunner,
    RunResult,
    ScenarioTask,
    derive_seeds,
)

FAST = dict(horizon=units.years(1.0), report_interval=units.days(7.0))


def _sample_from_seed(index: int, seed: int) -> float:
    """Module-level task (picklable) returning a bare float sample."""
    return RandomStreams(seed=seed).get("sample").random()


def _structured_task(index: int, seed: int) -> RunResult:
    return RunResult(index=index, seed=seed, sample=float(index))


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(100, 5) == derive_seeds(100, 5)

    def test_all_distinct(self):
        seeds = derive_seeds(100, 64)
        assert len(set(seeds)) == 64

    def test_matches_fork_lineage(self):
        root = RandomStreams(seed=100)
        assert derive_seeds(100, 3) == [root.fork(i).seed for i in range(3)]

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            derive_seeds(100, 0)


class TestMonteCarloRunner:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(_sample_from_seed, runs=0)
        with pytest.raises(ValueError):
            MonteCarloRunner(_sample_from_seed, runs=1, workers=-1)

    def test_workers_zero_resolves_to_cpu_count(self):
        import os

        runner = MonteCarloRunner(_sample_from_seed, runs=1, workers=0)
        assert runner.workers == (os.cpu_count() or 1)

    def test_serial_runs_in_index_order(self):
        study = MonteCarloRunner(_structured_task, runs=4, base_seed=1).run()
        assert [r.index for r in study.runs] == [0, 1, 2, 3]
        assert study.uptime.runs == 4

    def test_float_samples_are_wrapped(self):
        study = MonteCarloRunner(_sample_from_seed, runs=3, base_seed=5).run()
        assert all(isinstance(r, RunResult) for r in study.runs)
        assert all(0.0 <= r.sample <= 1.0 for r in study.runs)

    def test_parallel_matches_serial_for_plain_task(self):
        serial = MonteCarloRunner(
            _sample_from_seed, runs=6, base_seed=7, workers=1
        ).run()
        parallel = MonteCarloRunner(
            _sample_from_seed, runs=6, base_seed=7, workers=2
        ).run()
        assert [r.sample for r in serial.runs] == [r.sample for r in parallel.runs]
        assert serial.uptime == parallel.uptime

    def test_label_defaults_to_scenario(self):
        task = ScenarioTask("owned-only", **FAST)
        runner = MonteCarloRunner(task, runs=1)
        assert runner.label == "owned-only"


class TestScenarioTask:
    def test_structured_observability(self):
        task = ScenarioTask("owned-only", **FAST)
        study = MonteCarloRunner(task, runs=2, base_seed=100).run()
        for run in study.runs:
            assert 0.0 <= run.sample <= 1.0
            assert run.events_executed > 0
            assert run.peak_pending_events > 0
            assert run.wall_clock_s > 0.0
            assert run.detail is None
        assert study.total_events > 0
        assert study.peak_pending_events > 0

    def test_keep_result_attaches_full_result(self):
        task = ScenarioTask("owned-only", keep_result=True, **FAST)
        study = MonteCarloRunner(task, runs=1, base_seed=100).run()
        detail = study.runs[0].detail
        assert detail is not None
        assert detail.overall.uptime == study.runs[0].sample

    def test_overrides_apply(self):
        task = ScenarioTask(
            "as-designed", overrides=(("n_lora_devices", 0),), **FAST
        )
        study = MonteCarloRunner(task, runs=1, base_seed=100).run()
        assert study.runs[0].events_executed > 0

    def test_summary_lines_render(self):
        task = ScenarioTask("owned-only", **FAST)
        study = MonteCarloRunner(task, runs=1, base_seed=100).run()
        text = "\n".join(study.summary_lines())
        assert "owned-only" in text
        assert "peak pending queue" in text


class TestDeterminism:
    """The acceptance criterion: worker count never changes results."""

    def test_workers_4_vs_1_bit_identical(self):
        task = ScenarioTask("owned-only", **FAST)
        serial = MonteCarloRunner(task, runs=4, base_seed=100, workers=1).run()
        parallel = MonteCarloRunner(task, runs=4, base_seed=100, workers=4).run()
        # Every field of the aggregate, bit for bit.
        assert dataclasses.asdict(serial.uptime) == dataclasses.asdict(
            parallel.uptime
        )
        for a, b in zip(serial.runs, parallel.runs):
            assert a.index == b.index
            assert a.seed == b.seed
            assert a.sample == b.sample
            assert a.events_executed == b.events_executed
            assert a.peak_pending_events == b.peak_pending_events

    def test_monte_carlo_uptime_workers_invariant(self):
        from repro.experiment import monte_carlo_uptime

        kwargs = dict(runs=3, base_seed=100, **FAST)
        assert monte_carlo_uptime("owned-only", workers=1, **kwargs) == \
            monte_carlo_uptime("owned-only", workers=2, **kwargs)

    def test_seeds_are_fork_derived(self):
        task = ScenarioTask("owned-only", **FAST)
        runner = MonteCarloRunner(task, runs=3, base_seed=42)
        assert runner.seeds() == derive_seeds(42, 3)
